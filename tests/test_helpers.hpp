// Shared helpers for the RAPIDS test suite.
#pragma once

#include <string>
#include <vector>

#include "library/cell_library.hpp"
#include "mapping/mapper.hpp"
#include "netlist/builder.hpp"
#include "netlist/network.hpp"
#include "util/rng.hpp"

namespace rapids::testing {

/// Random fanout-free tree over fresh primary inputs.
/// Gates are drawn from AND/NAND/OR/NOR/XOR/XNOR/INV/BUF; every internal
/// node has a single fanout by construction. Returns the root gate.
inline GateId random_tree(NetworkBuilder& b, Rng& rng, int depth, int max_fanin,
                          std::string prefix = "t") {
  if (depth == 0) {
    return b.input(prefix);
  }
  const double roll = rng.next_double();
  if (roll < 0.15) {
    const GateId child = random_tree(b, rng, depth - 1, max_fanin, prefix + "i");
    return rng.next_bool() ? b.inv(child) : b.buf(child);
  }
  static constexpr GateType kTypes[6] = {GateType::And, GateType::Nand, GateType::Or,
                                         GateType::Nor, GateType::Xor, GateType::Xnor};
  const GateType type = kTypes[rng.next_below(6)];
  const int fanins = rng.next_int(2, max_fanin);
  std::vector<GateId> kids;
  for (int i = 0; i < fanins; ++i) {
    kids.push_back(random_tree(b, rng, depth - 1, max_fanin,
                               prefix + std::to_string(i)));
  }
  return b.gate(type, kids);
}

/// Random multi-output DAG with reconvergence (mapped-network shaped after
/// map_network). `seed` controls everything.
inline Network random_mapped_network(std::uint64_t seed, int num_inputs = 12,
                                     int num_gates = 60, int num_outputs = 6) {
  NetworkBuilder b;
  Rng rng(seed);
  std::vector<GateId> pool;
  for (int i = 0; i < num_inputs; ++i) pool.push_back(b.input("x" + std::to_string(i)));
  static constexpr GateType kTypes[8] = {GateType::And,  GateType::Nand, GateType::Or,
                                         GateType::Nor,  GateType::Xor,  GateType::Xnor,
                                         GateType::Inv,  GateType::Buf};
  for (int i = 0; i < num_gates; ++i) {
    const GateType type = kTypes[rng.next_below(8)];
    if (is_multi_input(type)) {
      const int fanins = rng.next_int(2, 4);
      std::vector<GateId> kids;
      for (int k = 0; k < fanins; ++k) kids.push_back(pool[rng.next_below(pool.size())]);
      pool.push_back(b.gate(type, kids));
    } else {
      pool.push_back(b.gate(type, {pool[rng.next_below(pool.size())]}));
    }
  }
  for (int o = 0; o < num_outputs; ++o) {
    b.output("y" + std::to_string(o), pool[pool.size() - 1 - static_cast<std::size_t>(o)]);
  }
  Network net = b.take();
  net.sweep_dangling();
  return net;
}

/// Materialized list of live gate ids (tests that need random indexing).
inline std::vector<GateId> live_gates(const Network& net) {
  std::vector<GateId> out;
  out.reserve(net.num_gates());
  for (const GateId g : net.gates()) out.push_back(g);
  return out;
}

/// Shared built-in library instance for tests.
inline const CellLibrary& lib035() {
  static const CellLibrary lib = builtin_library_035();
  return lib;
}

/// Map a source network with default options.
inline Network mapped(const Network& src) {
  return map_network(src, lib035()).mapped;
}

}  // namespace rapids::testing
