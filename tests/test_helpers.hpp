// Shared helpers for the RAPIDS test suite.
#pragma once

#include <string>
#include <vector>

#include "gen/random_circuit.hpp"
#include "library/cell_library.hpp"
#include "mapping/mapper.hpp"
#include "netlist/builder.hpp"
#include "netlist/network.hpp"
#include "util/rng.hpp"

namespace rapids::testing {

/// Random fanout-free tree over fresh primary inputs.
/// Gates are drawn from AND/NAND/OR/NOR/XOR/XNOR/INV/BUF; every internal
/// node has a single fanout by construction. Returns the root gate.
inline GateId random_tree(NetworkBuilder& b, Rng& rng, int depth, int max_fanin,
                          std::string prefix = "t") {
  if (depth == 0) {
    return b.input(prefix);
  }
  const double roll = rng.next_double();
  if (roll < 0.15) {
    const GateId child = random_tree(b, rng, depth - 1, max_fanin, prefix + "i");
    return rng.next_bool() ? b.inv(child) : b.buf(child);
  }
  static constexpr GateType kTypes[6] = {GateType::And, GateType::Nand, GateType::Or,
                                         GateType::Nor, GateType::Xor, GateType::Xnor};
  const GateType type = kTypes[rng.next_below(6)];
  const int fanins = rng.next_int(2, max_fanin);
  std::vector<GateId> kids;
  for (int i = 0; i < fanins; ++i) {
    kids.push_back(random_tree(b, rng, depth - 1, max_fanin,
                               prefix + std::to_string(i)));
  }
  return b.gate(type, kids);
}

/// Random multi-output DAG with reconvergence (mapped-network shaped after
/// map_network). `seed` controls everything. Thin wrapper over the library
/// generator (src/gen/random_circuit) that the fuzz harness also uses; the
/// default profile reproduces the exact networks this helper always made.
inline Network random_mapped_network(std::uint64_t seed, int num_inputs = 12,
                                     int num_gates = 60, int num_outputs = 6) {
  RandomCircuitOptions opt;
  opt.num_inputs = num_inputs;
  opt.num_gates = num_gates;
  opt.num_outputs = num_outputs;
  return random_network(seed, opt);
}

/// Materialized list of live gate ids (tests that need random indexing).
inline std::vector<GateId> live_gates(const Network& net) {
  std::vector<GateId> out;
  out.reserve(net.num_gates());
  for (const GateId g : net.gates()) out.push_back(g);
  return out;
}

/// Shared built-in library instance for tests.
inline const CellLibrary& lib035() {
  static const CellLibrary lib = builtin_library_035();
  return lib;
}

/// Map a source network with default options.
inline Network mapped(const Network& src) {
  return map_network(src, lib035()).mapped;
}

}  // namespace rapids::testing
