// Swappable-pin classification (paper §4) cross-validated against the
// ATPG-style cofactor oracle (Lemma 1) and truth-table NES/ES.
#include <gtest/gtest.h>

#include "netlist/builder.hpp"
#include "sym/atpg_check.hpp"
#include "sym/gisg.hpp"
#include "sym/symmetry.hpp"
#include "test_helpers.hpp"
#include "verify/truth_table.hpp"

namespace rapids {
namespace {

using testing::random_tree;

/// Find the covered pin record for a leaf driven by `driver`.
Pin leaf_pin_driven_by(const SuperGate& sg, GateId driver) {
  for (const CoveredPin& cp : sg.pins) {
    if (cp.leaf && cp.driver == driver) return cp.pin;
  }
  ADD_FAILURE() << "no leaf driven by requested gate";
  return Pin{};
}

TEST(Symmetry, AndPinsNonInvertingSwappable) {
  NetworkBuilder b;
  const GateId x = b.input("x"), y = b.input("y");
  const GateId root = b.and_({x, y});
  b.output("f", root);
  const Network net = b.take();
  const GisgPartition part = extract_gisg(net);
  ASSERT_EQ(part.sgs.size(), 1u);
  const SuperGate& sg = part.sgs[0];

  SwapPolarity pol;
  ASSERT_TRUE(classify_swap(sg, net, leaf_pin_driven_by(sg, x),
                            leaf_pin_driven_by(sg, y), pol));
  EXPECT_EQ(pol, SwapPolarity::NonInverting);
}

TEST(Symmetry, MixedPolarityPinsInvertingSwappable) {
  // f = AND(x, INV(y)): x and y are ES (inverting swappable), not NES.
  NetworkBuilder b;
  const GateId x = b.input("x"), y = b.input("y");
  const GateId root = b.and_({x, b.inv(y)});
  b.output("f", root);
  const Network net = b.take();
  const GisgPartition part = extract_gisg(net);
  ASSERT_EQ(part.sgs.size(), 1u);
  const SuperGate& sg = part.sgs[0];

  SwapPolarity pol;
  ASSERT_TRUE(classify_swap(sg, net, leaf_pin_driven_by(sg, x),
                            leaf_pin_driven_by(sg, y), pol));
  EXPECT_EQ(pol, SwapPolarity::Inverting);

  // Truth-table ground truth: variables 0(x),1(y) of f = x & !y.
  const TruthTable6 tt = truth_table_of(net, root);
  EXPECT_FALSE(tt.nes(0, 1));
  EXPECT_TRUE(tt.es(0, 1));
}

TEST(Symmetry, XorPinsBothPolarity) {
  NetworkBuilder b;
  const GateId x = b.input("x"), y = b.input("y"), z = b.input("z");
  const GateId root = b.xor_({x, y, z});
  b.output("f", root);
  const Network net = b.take();
  const GisgPartition part = extract_gisg(net);
  const SuperGate& sg = part.sgs[0];

  const TruthTable6 tt = truth_table_of(net, root);
  EXPECT_TRUE(tt.nes(0, 1));
  EXPECT_TRUE(tt.es(0, 1));

  SwapPolarity pol;
  EXPECT_TRUE(classify_swap(sg, net, leaf_pin_driven_by(sg, x),
                            leaf_pin_driven_by(sg, y), pol));
}

TEST(Symmetry, AncestorPinExcluded) {
  // f = AND(x, AND(y, z)). The inner AND's output feeds pin (root,1); a
  // covered pin of the inner gate must not swap with its own ancestor pin.
  NetworkBuilder b;
  const GateId x = b.input("x"), y = b.input("y"), z = b.input("z");
  const GateId inner = b.and_({y, z});
  const GateId root = b.and_({x, inner});
  b.output("f", root);
  const Network net = b.take();
  const GisgPartition part = extract_gisg(net);
  const SuperGate& sg = part.sgs[0];

  const Pin ancestor{root, 1};  // fed by inner
  const Pin inner_pin{inner, 0};
  SwapPolarity pol;
  EXPECT_FALSE(classify_swap(sg, net, ancestor, inner_pin, pol));
  EXPECT_TRUE(path_contains(sg, net, inner_pin, ancestor));
  // Non-ancestor internal pair is allowed: (root,0) vs (inner,0).
  EXPECT_TRUE(classify_swap(sg, net, Pin{root, 0}, inner_pin, pol));
}

TEST(Symmetry, LeafSymmetryClassesAndOr) {
  // AND(a, b, NOR(c, d)) -> classes {a,b} (imp 1) and {c,d} (imp 0).
  NetworkBuilder b;
  const GateId a = b.input("a"), bb = b.input("b"), c = b.input("c"), d = b.input("d");
  const GateId nor = b.nor({c, d});
  const GateId root = b.and_({a, bb, nor});
  b.output("f", root);
  const Network net = b.take();
  const GisgPartition part = extract_gisg(net);
  const auto classes = leaf_symmetry_classes(part.sgs[0]);
  ASSERT_EQ(classes.size(), 2u);
  EXPECT_EQ(classes[0].size() + classes[1].size(), 4u);
}

TEST(Symmetry, TrivialSupergateYieldsNoSwaps) {
  NetworkBuilder b;
  const GateId x = b.input("x");
  b.output("f", b.inv(x));
  const Network net = b.take();
  const GisgPartition part = extract_gisg(net);
  EXPECT_TRUE(enumerate_all_swaps(part, net).empty());
}

// --- property: detector agrees with the ATPG-style oracle ------------------

class DetectorVsOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DetectorVsOracle, LeafPairsMatchOracleOnRandomTrees) {
  NetworkBuilder b;
  Rng rng(GetParam());
  const GateId root = random_tree(b, rng, 3, 3);
  b.output("f", root);
  const Network net = b.take();

  const GisgPartition part = extract_gisg(net);
  for (std::size_t s = 0; s < part.sgs.size(); ++s) {
    const SuperGate& sg = part.sgs[s];
    if (sg.type == SgType::Trivial) continue;
    std::vector<const CoveredPin*> leaves;
    for (const CoveredPin& cp : sg.pins) {
      if (cp.leaf) leaves.push_back(&cp);
    }
    if (leaves.size() > 10) continue;  // keep the oracle exhaustive
    for (std::size_t i = 0; i < leaves.size(); ++i) {
      for (std::size_t j = i + 1; j < leaves.size(); ++j) {
        const PinSymmetry oracle =
            check_leaf_symmetry(net, sg, leaves[i]->pin, leaves[j]->pin);
        SwapPolarity pol;
        const bool detected =
            classify_swap(sg, net, leaves[i]->pin, leaves[j]->pin, pol);
        ASSERT_TRUE(detected);
        if (sg.type == SgType::Xor) {
          EXPECT_TRUE(oracle.nes) << "XOR leaves must be NES";
          EXPECT_TRUE(oracle.es) << "XOR leaves must be ES";
        } else if (pol == SwapPolarity::NonInverting) {
          EXPECT_TRUE(oracle.nes)
              << "detector claims NES for supergate " << s << " pins " << i << "," << j;
        } else {
          EXPECT_TRUE(oracle.es)
              << "detector claims ES for supergate " << s << " pins " << i << "," << j;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DetectorVsOracle,
                         ::testing::Values(7, 11, 17, 23, 29, 31, 37, 41, 47, 53, 59,
                                           61, 67, 71, 79, 83));

// --- whole-network PI symmetry against truth tables -------------------------

TEST(Symmetry, TruthTableNesEsDefinitions) {
  // f = majority(x0,x1,x2) is totally symmetric: all pairs NES, no pair ES.
  NetworkBuilder b;
  const GateId x0 = b.input("x0"), x1 = b.input("x1"), x2 = b.input("x2");
  const GateId maj =
      b.or_({b.and_({x0, x1}), b.and_({x0, x2}), b.and_({x1, x2})});
  b.output("f", maj);
  const Network net = b.take();
  const TruthTable6 tt = truth_table_of(net, maj);
  for (int i = 0; i < 3; ++i) {
    for (int j = i + 1; j < 3; ++j) {
      EXPECT_TRUE(tt.nes(i, j));
      EXPECT_FALSE(tt.es(i, j));
    }
  }
}

TEST(Symmetry, EsExampleFromPaperDefinition) {
  // x XOR y: both NES and ES (exchange and inverted exchange both hold).
  NetworkBuilder b;
  const GateId x = b.input("x"), y = b.input("y");
  const GateId f = b.xor_({x, y});
  b.output("f", f);
  const Network net = b.take();
  const TruthTable6 tt = truth_table_of(net, f);
  EXPECT_TRUE(tt.nes(0, 1));
  EXPECT_TRUE(tt.es(0, 1));
}

}  // namespace
}  // namespace rapids
