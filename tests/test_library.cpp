// Cell library: contents, lookup, delay model, liberty-lite round trip.
#include <gtest/gtest.h>

#include <sstream>

#include "library/cell_library.hpp"
#include "library/liberty_lite.hpp"
#include "util/assert.hpp"

namespace rapids {
namespace {

TEST(Library, BuiltinMatchesPaperDescription) {
  // "INV, BUF, NAND, NOR, XOR, and XNOR with number of inputs ranging from
  //  2 to 4. Each type has 4 different implementations."
  const CellLibrary lib = builtin_library_035();
  EXPECT_EQ(lib.variants(GateType::Inv, 1).size(), 4u);
  EXPECT_EQ(lib.variants(GateType::Buf, 1).size(), 4u);
  for (const GateType t : {GateType::Nand, GateType::Nor, GateType::Xor, GateType::Xnor}) {
    for (int n = 2; n <= 4; ++n) {
      EXPECT_EQ(lib.variants(t, n).size(), 4u) << to_string(t) << n;
    }
    EXPECT_EQ(lib.max_inputs(t), 4);
  }
  // 2 single-input types * 4 + 4 types * 3 arities * 4 = 56 cells.
  EXPECT_EQ(lib.num_cells(), 56);
}

TEST(Library, WireParamsArePaperValues) {
  const CellLibrary lib = builtin_library_035();
  EXPECT_NEAR(lib.wire().cap_per_um * 10000.0, 2.0, 1e-12);   // 2 pF/cm
  EXPECT_NEAR(lib.wire().res_per_um * 10000.0, 2.4, 1e-12);   // 2.4 kOhm/cm
}

TEST(Library, DriveMonotonicity) {
  // Larger drive: lower resistance, higher pin cap and area.
  const CellLibrary lib = builtin_library_035();
  const std::vector<int> v = lib.variants(GateType::Nand, 2);
  for (std::size_t i = 1; i < v.size(); ++i) {
    const Cell& prev = lib.cell(v[i - 1]);
    const Cell& cur = lib.cell(v[i]);
    EXPECT_LT(cur.res_rise, prev.res_rise);
    EXPECT_LT(cur.res_fall, prev.res_fall);
    EXPECT_GT(cur.input_cap, prev.input_cap);
    EXPECT_GT(cur.area, prev.area);
  }
}

TEST(Library, DelayIsAffineInLoad) {
  const CellLibrary lib = builtin_library_035();
  const Cell& c = lib.cell(lib.find(GateType::Nand, 2, 0));
  const double d0 = c.delay_rise(0.0);
  const double d1 = c.delay_rise(0.1);
  const double d2 = c.delay_rise(0.2);
  EXPECT_NEAR(d2 - d1, d1 - d0, 1e-12);
  EXPECT_GT(d1, d0);
  EXPECT_EQ(d0, c.intrinsic_rise);
}

TEST(Library, NorRiseSlowerThanNandRise) {
  // Stacked PMOS: NOR rise resistance exceeds NAND's at equal drive.
  const CellLibrary lib = builtin_library_035();
  const Cell& nand = lib.cell(lib.find(GateType::Nand, 2, 0));
  const Cell& nor = lib.cell(lib.find(GateType::Nor, 2, 0));
  EXPECT_GT(nor.res_rise, nand.res_rise);
}

TEST(Library, FindAndNames) {
  const CellLibrary lib = builtin_library_035();
  const int idx = lib.find(GateType::Xor, 3, 2);
  ASSERT_GE(idx, 0);
  EXPECT_EQ(lib.cell(idx).name, "XOR3_X4");
  EXPECT_EQ(lib.find_by_name("XOR3_X4"), idx);
  EXPECT_EQ(lib.find(GateType::Xor, 5, 0), -1);
  EXPECT_EQ(lib.find_by_name("nope"), -1);
}

TEST(Library, SmallestVariant) {
  const CellLibrary lib = builtin_library_035();
  const int s = lib.smallest(GateType::Inv, 1);
  ASSERT_GE(s, 0);
  EXPECT_EQ(lib.cell(s).drive_index, 0);
}

TEST(Library, DuplicateCellRejected) {
  CellLibrary lib;
  Cell c;
  c.name = "X";
  c.function = GateType::Inv;
  c.num_inputs = 1;
  c.area = 1;
  c.input_cap = 0.01;
  lib.add(c);
  EXPECT_THROW(lib.add(c), InternalError);
}

TEST(LibertyLite, RoundTrip) {
  const CellLibrary lib = builtin_library_035();
  std::stringstream ss;
  write_liberty_lite(lib, ss);
  const CellLibrary back = read_liberty_lite(ss);
  ASSERT_EQ(back.num_cells(), lib.num_cells());
  EXPECT_EQ(back.name(), lib.name());
  EXPECT_NEAR(back.wire().cap_per_um, lib.wire().cap_per_um, 1e-15);
  for (int i = 0; i < lib.num_cells(); ++i) {
    const Cell& a = lib.cell(i);
    const int j = back.find_by_name(a.name);
    ASSERT_GE(j, 0) << a.name;
    const Cell& b = back.cell(j);
    EXPECT_EQ(a.function, b.function);
    EXPECT_EQ(a.num_inputs, b.num_inputs);
    EXPECT_EQ(a.drive_index, b.drive_index);
    EXPECT_NEAR(a.area, b.area, 1e-9);
    EXPECT_NEAR(a.input_cap, b.input_cap, 1e-12);
    EXPECT_NEAR(a.res_rise, b.res_rise, 1e-9);
  }
}

TEST(LibertyLite, RejectsGarbage) {
  std::stringstream ss("frobnicate 1 2 3\n");
  EXPECT_THROW((void)read_liberty_lite(ss), InputError);
}

TEST(LibertyLite, CommentsAndBlanksIgnored) {
  std::stringstream ss(
      "# comment\n"
      "library demo\n"
      "\n"
      "wire 2.0 2.4\n"
      "cell INV_X1 INV 1 0 29 0.01 0.04 0.03 5.0 4.2 0.3  # trailing\n");
  const CellLibrary lib = read_liberty_lite(ss);
  EXPECT_EQ(lib.num_cells(), 1);
  EXPECT_EQ(lib.name(), "demo");
}

}  // namespace
}  // namespace rapids
