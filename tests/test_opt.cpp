// Optimizer invariants for gsg / GS / gsg+GS.
#include <gtest/gtest.h>

#include <sstream>

#include "gen/suite.hpp"
#include "mapping/mapper.hpp"
#include "netlist/validate.hpp"
#include "opt/optimizer.hpp"
#include "place/placer.hpp"
#include "opt/metrics.hpp"
#include "sizing/sizing.hpp"
#include "sym/gisg.hpp"
#include "test_helpers.hpp"
#include "verify/equivalence.hpp"

namespace rapids {
namespace {

using rapids::testing::lib035;
using rapids::testing::mapped;
using rapids::testing::random_mapped_network;

struct Prepared {
  Network net;
  Placement pl;
};

Prepared prep(std::uint64_t seed, int gates = 120) {
  Prepared p;
  p.net = mapped(random_mapped_network(seed, 14, gates, 10));
  PlacerOptions popt;
  popt.effort = 2.0;
  popt.num_temps = 8;
  popt.seed = seed;
  p.pl = place(p.net, lib035(), popt);
  return p;
}

OptimizerOptions fast(OptMode mode) {
  OptimizerOptions o;
  o.mode = mode;
  o.max_iterations = 3;
  return o;
}

TEST(Sizing, ResizeCandidatesExcludeCurrent) {
  const Prepared p = prep(1);
  p.net.for_each_gate([&](GateId g) {
    if (!is_logic(p.net.type(g)) || p.net.cell(g) < 0) return;
    const auto cands = resize_candidates(p.net, lib035(), g);
    EXPECT_EQ(cands.size(), 3u);  // 4 drives - current
    for (const int c : cands) EXPECT_NE(c, p.net.cell(g));
  });
}

TEST(Sizing, NetworkAreaSumsCells) {
  const Prepared p = prep(2);
  double manual = 0;
  p.net.for_each_gate([&](GateId g) { manual += gate_area(p.net, lib035(), g); });
  EXPECT_DOUBLE_EQ(network_area(p.net, lib035()), manual);
}

class OptimizerInvariants
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(OptimizerInvariants, DelayNeverWorseFunctionPreserved) {
  const OptMode mode = static_cast<OptMode>(std::get<0>(GetParam()));
  const std::uint64_t seed = std::get<1>(GetParam());
  Prepared p = prep(seed);
  const Network golden = p.net.clone();
  const Placement placed_before = p.pl;

  Sta sta(p.net, lib035(), p.pl);
  const OptimizerResult r = optimize(p.net, p.pl, lib035(), sta, fast(mode));
  validate_or_throw(p.net);

  EXPECT_LE(r.final_delay, r.initial_delay + 1e-6);
  EXPECT_TRUE(check_equivalence(golden, p.net).equivalent);

  // Placement perturbation rules: no original cell may move, ever.
  golden.for_each_gate([&](GateId g) {
    if (!placed_before.is_placed(g) || p.net.is_deleted(g)) return;
    EXPECT_EQ(p.pl.at(g).x, placed_before.at(g).x) << golden.name(g);
    EXPECT_EQ(p.pl.at(g).y, placed_before.at(g).y) << golden.name(g);
  });

  if (mode == OptMode::GateSizing) {
    // GS never adds/removes gates.
    EXPECT_EQ(r.swaps_committed, 0);
    EXPECT_EQ(r.inverters_added, 0);
    EXPECT_EQ(p.net.num_gates(), golden.num_gates());
  }
  if (mode == OptMode::Gsg) {
    EXPECT_EQ(r.resizes_committed, 0);
    // gsg: cell bindings of surviving original gates are untouched.
    golden.for_each_gate([&](GateId g) {
      if (!p.net.is_deleted(g)) EXPECT_EQ(p.net.cell(g), golden.cell(g));
    });
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndSeeds, OptimizerInvariants,
    ::testing::Combine(::testing::Values(0, 1, 2),  // Gsg, GateSizing, GsgPlusGS
                       ::testing::Values(11u, 22u, 33u)));

TEST(Optimizer, ReportsSupergateStats) {
  Prepared p = prep(44);
  Sta sta(p.net, lib035(), p.pl);
  const OptimizerResult r = optimize(p.net, p.pl, lib035(), sta, fast(OptMode::Gsg));
  EXPECT_GT(r.coverage, 0.0);
  EXPECT_LE(r.coverage, 1.0);
  EXPECT_GE(r.max_sg_inputs, 2);
  EXPECT_GE(r.iterations, 1);
  EXPECT_GT(r.initial_delay, 0.0);
}

TEST(Optimizer, ImprovementPercentArithmetic) {
  OptimizerResult r;
  r.initial_delay = 10.0;
  r.final_delay = 9.0;
  EXPECT_NEAR(r.improvement_percent(), 10.0, 1e-12);
  r.initial_area = 100.0;
  r.final_area = 98.0;
  EXPECT_NEAR(r.area_delta_percent(), -2.0, 1e-12);
}

TEST(Optimizer, GsgPlusGsSizesOnlyUncoveredGates) {
  // Contract from the paper: gates covered by non-trivial supergates are
  // rewired, the rest sized. We verify no resize touched a covered gate by
  // re-deriving coverage on the ORIGINAL netlist and checking bindings.
  Prepared p = prep(55);
  const Network golden = p.net.clone();
  const GisgPartition part = extract_gisg(golden);
  std::vector<bool> covered(golden.id_bound(), false);
  for (const SuperGate& sg : part.sgs) {
    if (sg.is_trivial()) continue;
    for (const GateId g : sg.covered) covered[g] = true;
  }
  Sta sta(p.net, lib035(), p.pl);
  optimize(p.net, p.pl, lib035(), sta, fast(OptMode::GsgPlusGS));
  golden.for_each_gate([&](GateId g) {
    if (g < covered.size() && covered[g] && !p.net.is_deleted(g)) {
      EXPECT_EQ(p.net.cell(g), golden.cell(g)) << "covered gate was resized";
    }
  });
}

TEST(Optimizer, MetricsTableFormatting) {
  std::vector<BenchmarkRow> rows(2);
  rows[0].name = "alu2";
  rows[0].num_gates = 516;
  rows[0].init_delay_ns = 7.6;
  rows[0].gsg_improve_pct = 6.9;
  rows[0].gs_improve_pct = 2.7;
  rows[0].gsg_gs_improve_pct = 9.7;
  rows[1].name = "k2";
  rows[1].gsg_improve_pct = 8.0;
  rows[1].gs_improve_pct = 3.0;
  rows[1].gsg_gs_improve_pct = 10.1;

  const Table1Averages avg = table1_averages(rows);
  EXPECT_NEAR(avg.gsg, (6.9 + 8.0) / 2, 1e-9);
  std::ostringstream os;
  print_table1(rows, os);
  EXPECT_NE(os.str().find("alu2"), std::string::npos);
  EXPECT_NE(os.str().find("ave."), std::string::npos);
}

TEST(Optimizer, LeavesOnlyModeStillSound) {
  Prepared p = prep(66);
  const Network golden = p.net.clone();
  Sta sta(p.net, lib035(), p.pl);
  OptimizerOptions o = fast(OptMode::Gsg);
  o.leaves_only_swaps = true;
  const OptimizerResult r = optimize(p.net, p.pl, lib035(), sta, o);
  EXPECT_LE(r.final_delay, r.initial_delay + 1e-6);
  EXPECT_TRUE(check_equivalence(golden, p.net).equivalent);
}

}  // namespace
}  // namespace rapids
