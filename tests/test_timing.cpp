// Timing stack: star RC / Elmore analytics, STA, incremental transactions.
#include <gtest/gtest.h>

#include "netlist/builder.hpp"
#include "place/placer.hpp"
#include "rewire/swap.hpp"
#include "sym/gisg.hpp"
#include "sym/symmetry.hpp"
#include "test_helpers.hpp"
#include "timing/sta.hpp"

namespace rapids {
namespace {

using rapids::testing::lib035;
using rapids::testing::mapped;
using rapids::testing::random_mapped_network;

Placement grid_placement(const Network& net, double pitch = 40.0) {
  Placement pl(net.id_bound());
  Die die;
  die.width = 2000;
  die.height = 2000;
  die.num_rows = 100;
  pl.set_die(die);
  std::size_t i = 0;
  net.for_each_gate([&](GateId g) {
    pl.set(g, Point{static_cast<double>(i % 40) * pitch,
                    static_cast<double>(i / 40) * pitch});
    ++i;
  });
  return pl;
}

TEST(StarNet, TwoTerminalAnalytic) {
  // Driver at (0,0), one sink at (1000,0) with pin cap 0.01 pF.
  // Center of gravity at (500,0): stem 500um, branch 500um.
  NetworkBuilder b;
  const GateId x = b.input("x");
  const GateId g = b.net().add_gate(GateType::Inv);
  b.net().add_fanin(g, x);
  b.output("f", g);
  Network net = b.take();
  net.set_cell(g, lib035().find(GateType::Inv, 1, 0));

  Placement pl(net.id_bound());
  pl.set(x, Point{0, 0});
  pl.set(g, Point{1000, 0});
  pl.set(net.primary_outputs()[0], Point{1000, 0});

  const StarNet star = build_star_net(net, lib035(), pl, x);
  const double r_per_um = lib035().wire().res_per_um;
  const double c_per_um = lib035().wire().cap_per_um;
  const double pin_cap = lib035().cell(net.cell(g)).input_cap;

  EXPECT_NEAR(star.stem_res, 500 * r_per_um, 1e-12);
  EXPECT_NEAR(star.stem_cap, 500 * c_per_um, 1e-12);
  EXPECT_NEAR(star.wire_cap, 1000 * c_per_um, 1e-12);
  EXPECT_NEAR(star.pin_cap, pin_cap, 1e-12);
  ASSERT_EQ(star.branches.size(), 1u);
  // Elmore: Rstem*(Cstem/2 + Cbranch + Cpin) + Rbranch*(Cbranch/2 + Cpin).
  const double rs = 500 * r_per_um, cs = 500 * c_per_um;
  const double expect = rs * (cs / 2 + cs + pin_cap) + rs * (cs / 2 + pin_cap);
  EXPECT_NEAR(star.branches[0].wire_delay, expect, 1e-12);
  EXPECT_NEAR(star.delay_to(star.branches[0].pin), expect, 1e-15);
}

TEST(StarNet, SinksAtDifferentDistancesDifferentDelays) {
  // The paper's point: star sinks see different delays -> swapping helps.
  NetworkBuilder b;
  const GateId x = b.input("x");
  const GateId g1 = b.net().add_gate(GateType::Inv);
  b.net().add_fanin(g1, x);
  const GateId g2 = b.net().add_gate(GateType::Inv);
  b.net().add_fanin(g2, x);
  b.output("f1", g1);
  b.output("f2", g2);
  Network net = b.take();
  net.set_cell(g1, lib035().find(GateType::Inv, 1, 0));
  net.set_cell(g2, lib035().find(GateType::Inv, 1, 0));

  Placement pl(net.id_bound());
  pl.set(x, Point{0, 0});
  pl.set(g1, Point{200, 0});
  pl.set(g2, Point{2000, 0});
  pl.set(net.primary_outputs()[0], Point{200, 0});
  pl.set(net.primary_outputs()[1], Point{2000, 0});

  const StarNet star = build_star_net(net, lib035(), pl, x);
  ASSERT_EQ(star.branches.size(), 2u);
  EXPECT_NE(star.delay_to(Pin{g1, 0}), star.delay_to(Pin{g2, 0}));
}

TEST(DelayModel, ArcSenses) {
  EXPECT_EQ(arc_sense(GateType::Nand), ArcSense::Negative);
  EXPECT_EQ(arc_sense(GateType::Or), ArcSense::Positive);
  EXPECT_EQ(arc_sense(GateType::Xnor), ArcSense::Both);
}

TEST(DelayModel, NegativeUnateCrossesTransitions) {
  RiseFall out{-1e9, -1e9};
  accumulate_arc(ArcSense::Negative, RiseFall{1.0, 2.0}, RiseFall{0.1, 0.2}, out);
  // Output rise comes from input fall and vice versa.
  EXPECT_NEAR(out.rise, 2.0 + 0.1, 1e-12);
  EXPECT_NEAR(out.fall, 1.0 + 0.2, 1e-12);
}

TEST(Sta, ChainDelayComposition) {
  // INV chain: critical delay strictly increases with each stage.
  NetworkBuilder b;
  const GateId x = b.input("x");
  GateId cur = x;
  std::vector<GateId> invs;
  for (int i = 0; i < 5; ++i) {
    const GateId inv = b.net().add_gate(GateType::Inv);
    b.net().add_fanin(inv, cur);
    invs.push_back(inv);
    cur = inv;
  }
  b.output("f", cur);
  Network net = b.take();
  for (const GateId g : invs) net.set_cell(g, lib035().find(GateType::Inv, 1, 1));

  const Placement pl = grid_placement(net);
  Sta sta(net, lib035(), pl);
  double prev = 0.0;
  for (const GateId g : invs) {
    EXPECT_GT(sta.arrival(g), prev);
    prev = sta.arrival(g);
  }
  EXPECT_GE(sta.critical_delay(), prev);
}

TEST(Sta, CriticalPathEndsAtWorstPo) {
  const Network net = mapped(random_mapped_network(201));
  const Placement pl = grid_placement(net);
  Sta sta(net, lib035(), pl);
  const auto path = sta.critical_path();
  ASSERT_GE(path.size(), 2u);
  EXPECT_NEAR(sta.arrival(path.back()), sta.critical_delay(), 1e-9);
  const GateType front_type = net.type(path.front());
  EXPECT_TRUE(front_type == GateType::Input || front_type == GateType::Const0 ||
              front_type == GateType::Const1);
}

TEST(Sta, SlackSignsAgainstRequiredTime) {
  const Network net = mapped(random_mapped_network(202));
  const Placement pl = grid_placement(net);
  Sta sta(net, lib035(), pl);
  sta.refresh_required();
  // Required defaults to the critical delay: worst slack ~ 0, none negative
  // beyond rounding.
  EXPECT_NEAR(sta.worst_slack(), 0.0, 1e-6);
  sta.set_required_time(sta.critical_delay() + 1.0);
  sta.refresh_required();
  EXPECT_NEAR(sta.worst_slack(), 1.0, 1e-6);
  EXPECT_NEAR(sta.total_negative_slack(), 0.0, 1e-9);
}

TEST(Sta, IncrementalResizeMatchesFullRecompute) {
  Network net = mapped(random_mapped_network(203, 14, 90, 8));
  const Placement pl = grid_placement(net);
  Sta sta(net, lib035(), pl);

  // Upsize a mid-network gate inside a transaction, then compare against a
  // from-scratch STA on the modified network.
  GateId victim = kNullGate;
  net.for_each_gate([&](GateId g) {
    if (victim == kNullGate && is_logic(net.type(g)) && net.cell(g) >= 0 &&
        net.fanout_count(g) >= 2) {
      victim = g;
    }
  });
  ASSERT_NE(victim, kNullGate);
  const Cell& cell = lib035().cell(net.cell(victim));
  const int other = lib035().find(cell.function, cell.num_inputs,
                                  cell.drive_index == 0 ? 3 : 0);
  ASSERT_GE(other, 0);

  sta.begin();
  net.set_cell(victim, other);
  for (const GateId f : net.fanins(victim)) sta.invalidate_net(f);
  sta.touch_gate(victim);
  sta.propagate();
  sta.commit();

  Sta fresh(net, lib035(), pl);
  net.for_each_gate([&](GateId g) {
    EXPECT_NEAR(sta.arrival(g), fresh.arrival(g), 1e-6) << net.name(g);
  });
  EXPECT_NEAR(sta.critical_delay(), fresh.critical_delay(), 1e-6);
}

TEST(Sta, RollbackRestoresExactState) {
  Network net = mapped(random_mapped_network(204, 14, 90, 8));
  Placement pl = grid_placement(net);
  Sta sta(net, lib035(), pl);
  const double before = sta.critical_delay();
  std::vector<RiseFall> arr_before;
  net.for_each_gate([&](GateId g) { arr_before.push_back(sta.arrival_rf(g)); });

  // Apply a swap transactionally, then roll back.
  const GisgPartition part = extract_gisg(net);
  const auto swaps = enumerate_all_swaps(part, net);
  ASSERT_FALSE(swaps.empty());
  sta.begin();
  SwapEdit edit = apply_swap(net, pl, lib035(), swaps[0]);
  for (const GateId d : edit.dirty_nets) sta.invalidate_net(d);
  sta.propagate();
  undo_swap(net, pl, edit);
  sta.rollback();

  EXPECT_DOUBLE_EQ(sta.critical_delay(), before);
  std::size_t i = 0;
  net.for_each_gate([&](GateId g) {
    EXPECT_EQ(sta.arrival_rf(g), arr_before[i]) << net.name(g);
    ++i;
  });
}

TEST(Sta, SwapCommitMatchesFullRecompute) {
  Network net = mapped(random_mapped_network(205, 14, 90, 8));
  Placement pl = grid_placement(net);
  Sta sta(net, lib035(), pl);

  const GisgPartition part = extract_gisg(net);
  const auto swaps = enumerate_all_swaps(part, net);
  ASSERT_FALSE(swaps.empty());
  std::size_t applied = 0;
  for (const SwapCandidate& cand : swaps) {
    sta.begin();
    SwapEdit edit = apply_swap(net, pl, lib035(), cand);
    for (const GateId d : edit.dirty_nets) sta.invalidate_net(d);
    sta.propagate();
    sta.commit();
    if (++applied >= 5) break;
  }
  Sta fresh(net, lib035(), pl);
  EXPECT_NEAR(sta.critical_delay(), fresh.critical_delay(), 1e-5);
}

TEST(Sta, SumPoArrivalConsistent) {
  const Network net = mapped(random_mapped_network(206));
  const Placement pl = grid_placement(net);
  Sta sta(net, lib035(), pl);
  double manual = 0;
  for (const GateId po : net.primary_outputs()) manual += sta.arrival(po);
  EXPECT_NEAR(sta.sum_po_arrival(), manual, 1e-9);
}

TEST(Sta, LongerWiresIncreaseDelay) {
  // Same netlist, stretched placement => larger critical delay.
  const Network net = mapped(random_mapped_network(207));
  const Placement tight = grid_placement(net, 20.0);
  const Placement loose = grid_placement(net, 200.0);
  Sta sta_tight(net, lib035(), tight);
  Sta sta_loose(net, lib035(), loose);
  EXPECT_GT(sta_loose.critical_delay(), sta_tight.critical_delay());
}

}  // namespace
}  // namespace rapids
