// SessionContext: owned observability bundles, thread-scoped installation,
// and the headline property — concurrent flows on separate sessions are
// byte-identical to their serial runs (BLIF, provenance, metrics).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "flow/flow.hpp"
#include "io/blif_writer.hpp"
#include "session/session.hpp"
#include "test_helpers.hpp"
#include "trace/metrics.hpp"
#include "trace/provenance.hpp"
#include "trace/trace.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace rapids {
namespace {

using rapids::testing::lib035;

TEST(Session, ScopeInstallsAndRestoresThreadContext) {
  ASSERT_EQ(current_session_or_null(), nullptr);
  Logger* prev_logger = &current_logger();
  Tracer* prev_tracer = &current_tracer();
  const int prev_worker = current_worker();

  SessionContext s("scope-test");
  EXPECT_FALSE(s.is_process_default());
  {
    SessionScope scope(s, 3);
    EXPECT_EQ(&current_session(), &s);
    EXPECT_EQ(current_session_or_null(), &s);
    EXPECT_EQ(&current_logger(), &s.logger());
    EXPECT_EQ(&current_tracer(), &s.tracer());
    EXPECT_EQ(&current_provenance(), &s.provenance());
    EXPECT_EQ(current_worker(), 3);
    {
      SessionContext inner("inner");
      SessionScope nested(inner, 7);
      EXPECT_EQ(&current_session(), &inner);
      EXPECT_EQ(&current_tracer(), &inner.tracer());
      EXPECT_EQ(current_worker(), 7);
    }
    // The nested scope restored the outer session AND its worker id.
    EXPECT_EQ(&current_session(), &s);
    EXPECT_EQ(&current_tracer(), &s.tracer());
    EXPECT_EQ(current_worker(), 3);
  }
  EXPECT_EQ(current_session_or_null(), nullptr);
  EXPECT_EQ(&current_logger(), prev_logger);
  EXPECT_EQ(&current_tracer(), prev_tracer);
  EXPECT_EQ(current_worker(), prev_worker);
}

TEST(Session, ProcessDefaultWrapsSingletons) {
  SessionContext& def = SessionContext::process_default();
  EXPECT_TRUE(def.is_process_default());
  EXPECT_EQ(def.id(), "default");
  EXPECT_EQ(&def.logger(), &Logger::instance());
  EXPECT_EQ(&def.tracer(), &Tracer::instance());
  EXPECT_EQ(&def.provenance(), &ProvenanceLog::instance());
  // The default context lends no pool: callers own their workers, exactly
  // as before sessions existed.
  EXPECT_EQ(def.acquire_pool(4), nullptr);
  // Scoping the default context clears the thread-locals so the ambient
  // accessors fall back to the singletons.
  SessionScope scope(def, 0);
  EXPECT_EQ(current_session_or_null(), nullptr);
  EXPECT_EQ(&current_session(), &def);
  EXPECT_EQ(&current_tracer(), &Tracer::instance());
}

TEST(Session, OwnedSessionsAreIsolated) {
  SessionContext a("a"), b("b");
  EXPECT_NE(&a.tracer(), &b.tracer());
  EXPECT_NE(&a.provenance(), &b.provenance());
  EXPECT_NE(&a.tracer(), &Tracer::instance());
  EXPECT_EQ(a.provenance().session_id(), "a");
  EXPECT_EQ(b.provenance().session_id(), "b");
  std::ostringstream ma;
  a.metrics().write_json(ma);
  EXPECT_NE(ma.str().find("\"session.id\": \"a\""), std::string::npos);
}

TEST(Session, OwnedPoolIsPersistentAndResizable) {
  SessionContext s("pool");
  ThreadPool* p2 = s.acquire_pool(2);
  ASSERT_NE(p2, nullptr);
  EXPECT_EQ(p2->workers(), 2);
  // Same size: the warm pool is reused, not respawned.
  EXPECT_EQ(s.acquire_pool(2), p2);
  ThreadPool* p3 = s.acquire_pool(3);
  ASSERT_NE(p3, nullptr);
  EXPECT_EQ(p3->workers(), 3);
}

TEST(Session, TracerDoubleEnableThrows) {
  Tracer t;
  t.enable(2);
  EXPECT_THROW(t.enable(2), InternalError);
  EXPECT_THROW(t.enable(4), InternalError);
  t.disable();
  t.enable(1);  // disable -> enable is the supported reuse path
  t.disable();
}

TEST(Session, TracerOutOfRangeWorkerDropsInsteadOfUB) {
  Tracer t;
  t.enable(2);  // rings for workers 0 and 1
  {
    WorkerIdScope w(1);
    t.instant("test", "in_range");
  }
  EXPECT_EQ(t.dropped_out_of_range(), 0u);
  {
    WorkerIdScope w(5);  // beyond the ring array: dropped, counted, no UB
    t.instant("test", "out_of_range");
    t.instant("test", "out_of_range_again");
  }
  EXPECT_EQ(t.dropped_out_of_range(), 2u);
  {
    WorkerIdScope w(-1);  // unset id clamps to the main-thread ring
    t.instant("test", "main_thread");
  }
  t.disable();
  EXPECT_EQ(t.recorded(), 2u);            // in_range + main_thread
  EXPECT_GE(t.dropped(), 2u);             // folds the out-of-range count in
  t.enable(2);                            // re-enable resets the drop counter
  EXPECT_EQ(t.dropped_out_of_range(), 0u);
  t.disable();
}

// --- the tentpole property -------------------------------------------------
//
// Two flows on overlapping threads in one process, each on its own session,
// must produce byte-identical artifacts to the same flows run serially:
// same BLIF, same provenance stream, same metrics (modulo wall-clock).

struct FlowArtifacts {
  std::string blif;
  std::string provenance;
  std::string metrics;
};

FlowOptions session_flow(SessionContext& session) {
  FlowOptions o;
  o.placer.effort = 1.0;
  o.placer.num_temps = 6;
  o.opt.max_iterations = 2;
  o.opt.threads = 2;
  o.session = &session;
  return o;
}

/// Strip wall-clock metrics ("time.*" / "rate.*" gauges) — the only
/// nondeterministic lines in the registry snapshot.
std::string strip_wall_clock(const std::string& json) {
  std::istringstream is(json);
  std::ostringstream os;
  std::string line;
  while (std::getline(is, line)) {
    if (line.find("\"time.") != std::string::npos) continue;
    if (line.find("\"rate.") != std::string::npos) continue;
    os << line << '\n';
  }
  return os.str();
}

FlowArtifacts run_session_flow(const std::string& id, const std::string& circuit) {
  SessionContext session(id, /*rng_seed=*/42);
  SessionScope scope(session);
  session.provenance().enable();
  const FlowOptions options = session_flow(session);
  PreparedCircuit prepared = prepare_benchmark(circuit, lib035(), options);
  const ModeRun run =
      run_mode(std::move(prepared), lib035(), OptMode::GsgPlusGS, options);
  EXPECT_TRUE(run.verified) << id;

  FlowArtifacts out;
  std::ostringstream blif;
  write_blif(run.optimized, blif, circuit);
  out.blif = blif.str();

  session.provenance().disable();
  std::string diag;
  EXPECT_GE(session.provenance().resolve_committed_chains(&diag), 0) << diag;
  std::ostringstream prov;
  session.provenance().write_json(prov);
  out.provenance = prov.str();

  std::ostringstream metrics;
  session.metrics().write_json(metrics);
  out.metrics = strip_wall_clock(metrics.str());
  return out;
}

TEST(SessionConcurrencySlow, ConcurrentFlowsMatchSerialRunsByteForByte) {
  // Serial references, each on a fresh owned session.
  const FlowArtifacts serial_c432 = run_session_flow("s432", "c432");
  const FlowArtifacts serial_c499 = run_session_flow("s499", "c499");
  ASSERT_FALSE(serial_c432.blif.empty());
  ASSERT_NE(serial_c432.blif, serial_c499.blif);
  EXPECT_NE(serial_c432.provenance.find("\"session\": \"s432\""),
            std::string::npos);

  // The same two flows, concurrently: each job thread runs a full flow on
  // its own session (and its session's own 2-worker probe pool), so four
  // threads overlap inside one process.
  FlowArtifacts conc_c432, conc_c499;
  std::thread t432([&] { conc_c432 = run_session_flow("s432", "c432"); });
  std::thread t499([&] { conc_c499 = run_session_flow("s499", "c499"); });
  t432.join();
  t499.join();

  EXPECT_EQ(conc_c432.blif, serial_c432.blif);
  EXPECT_EQ(conc_c499.blif, serial_c499.blif);
  EXPECT_EQ(conc_c432.provenance, serial_c432.provenance);
  EXPECT_EQ(conc_c499.provenance, serial_c499.provenance);
  EXPECT_EQ(conc_c432.metrics, serial_c432.metrics);
  EXPECT_EQ(conc_c499.metrics, serial_c499.metrics);
}

}  // namespace
}  // namespace rapids
