// Network data structure, topological utilities, validation, simplify.
#include <gtest/gtest.h>

#include "netlist/builder.hpp"
#include "netlist/simplify.hpp"
#include "netlist/topo.hpp"
#include "netlist/validate.hpp"
#include "test_helpers.hpp"
#include "verify/equivalence.hpp"

namespace rapids {
namespace {

TEST(GateType, BaseAndInversion) {
  EXPECT_EQ(base_type(GateType::Nand), GateType::And);
  EXPECT_EQ(base_type(GateType::Nor), GateType::Or);
  EXPECT_EQ(base_type(GateType::Xnor), GateType::Xor);
  EXPECT_EQ(base_type(GateType::Inv), GateType::Buf);
  EXPECT_EQ(inverted_type(GateType::And), GateType::Nand);
  EXPECT_EQ(inverted_type(GateType::Xnor), GateType::Xor);
  EXPECT_TRUE(is_output_inverted(GateType::Nor));
  EXPECT_FALSE(is_output_inverted(GateType::Or));
}

TEST(GateType, ControllingValues) {
  EXPECT_EQ(controlling_value(GateType::And), 0);
  EXPECT_EQ(controlling_value(GateType::Nand), 0);
  EXPECT_EQ(controlling_value(GateType::Or), 1);
  EXPECT_EQ(controlling_value(GateType::Nor), 1);
  EXPECT_EQ(non_controlling_value(GateType::And), 1);
  EXPECT_FALSE(has_controlling_value(GateType::Xor));
  EXPECT_THROW(controlling_value(GateType::Xor), InternalError);
}

TEST(GateType, ImplicationTrigger) {
  EXPECT_EQ(implication_trigger_output(GateType::And), 1);
  EXPECT_EQ(implication_trigger_output(GateType::Nand), 0);
  EXPECT_EQ(implication_trigger_output(GateType::Or), 0);
  EXPECT_EQ(implication_trigger_output(GateType::Nor), 1);
}

TEST(GateType, EvalWord) {
  const std::uint64_t a = 0b1100, b = 0b1010;
  const std::uint64_t fan[2] = {a, b};
  EXPECT_EQ(eval_word(GateType::And, fan, 2) & 0xF, 0b1000u);
  EXPECT_EQ(eval_word(GateType::Or, fan, 2) & 0xF, 0b1110u);
  EXPECT_EQ(eval_word(GateType::Xor, fan, 2) & 0xF, 0b0110u);
  EXPECT_EQ(eval_word(GateType::Nand, fan, 2) & 0xF, 0b0111u);
  EXPECT_EQ(eval_word(GateType::Nor, fan, 2) & 0xF, 0b0001u);
  EXPECT_EQ(eval_word(GateType::Xnor, fan, 2) & 0xF, 0b1001u);
  EXPECT_EQ(eval_word(GateType::Inv, fan, 1) & 0xF, 0b0011u);
  EXPECT_EQ(eval_word(GateType::Buf, fan, 1) & 0xF, 0b1100u);
}

TEST(GateType, StringRoundTrip) {
  for (int i = 0; i < kNumGateTypes; ++i) {
    const GateType t = static_cast<GateType>(i);
    EXPECT_EQ(gate_type_from_string(to_string(t)), t);
  }
  EXPECT_THROW(gate_type_from_string("FROB"), InputError);
}

TEST(Network, BasicConstruction) {
  NetworkBuilder b;
  const GateId x = b.input("x"), y = b.input("y");
  const GateId g = b.nand({x, y});
  b.output("f", g);
  const Network& net = b.net();

  EXPECT_EQ(net.num_gates(), 4u);
  EXPECT_EQ(net.num_logic_gates(), 1u);
  EXPECT_EQ(net.primary_inputs().size(), 2u);
  EXPECT_EQ(net.primary_outputs().size(), 1u);
  EXPECT_EQ(net.fanin_count(g), 2u);
  EXPECT_EQ(net.fanout_count(x), 1u);
  EXPECT_EQ(net.type(g), GateType::Nand);
}

TEST(Network, NamesUniqueAndFindable) {
  NetworkBuilder b;
  const GateId x = b.input("sig");
  EXPECT_EQ(b.net().find("sig"), x);
  EXPECT_EQ(b.net().find("nope"), kNullGate);
  EXPECT_THROW(b.input("sig"), InternalError);
}

TEST(Network, SetFaninMaintainsFanouts) {
  NetworkBuilder b;
  const GateId x = b.input("x"), y = b.input("y"), z = b.input("z");
  const GateId g = b.and_({x, y});
  b.output("f", g);
  Network net = b.take();

  net.set_fanin(Pin{g, 0}, z);
  EXPECT_EQ(net.fanin(g, 0), z);
  EXPECT_EQ(net.fanout_count(x), 0u);
  EXPECT_EQ(net.fanout_count(z), 1u);
  validate_or_throw(net);
}

TEST(Network, RemoveFaninShiftsAndReindexes) {
  NetworkBuilder b;
  const GateId x = b.input("x"), y = b.input("y"), z = b.input("z");
  const GateId g = b.and_({x, y, z});
  b.output("f", g);
  Network net = b.take();

  net.remove_fanin(g, 1);  // drop y
  EXPECT_EQ(net.fanin_count(g), 2u);
  EXPECT_EQ(net.fanin(g, 0), x);
  EXPECT_EQ(net.fanin(g, 1), z);
  EXPECT_EQ(net.fanout_count(y), 0u);
  validate_or_throw(net);
}

TEST(Network, DeleteGateRules) {
  NetworkBuilder b;
  const GateId x = b.input("x");
  const GateId g = b.inv(x);
  const GateId h = b.inv(g);
  b.output("f", h);
  Network net = b.take();

  EXPECT_THROW(net.delete_gate(g), InternalError);  // still drives h
  net.set_fanin(Pin{h, 0}, x);
  net.delete_gate(g);
  EXPECT_TRUE(net.is_deleted(g));
  EXPECT_EQ(net.num_logic_gates(), 1u);
  validate_or_throw(net);
}

TEST(Network, ReplaceAllFanouts) {
  NetworkBuilder b;
  const GateId x = b.input("x"), y = b.input("y");
  const GateId g1 = b.inv(x);
  b.output("f1", b.and_({g1, y}));
  b.output("f2", b.or_({g1, y}));
  Network net = b.take();

  net.replace_all_fanouts(g1, y);
  EXPECT_EQ(net.fanout_count(g1), 0u);
  EXPECT_EQ(net.fanout_count(y), 4u);
  validate_or_throw(net);
}

TEST(Network, CloneIsDeep) {
  Network net = rapids::testing::random_mapped_network(5);
  Network copy = net.clone();
  const GateId some = rapids::testing::live_gates(net).back();
  if (net.fanin_count(some) > 0) {
    copy.set_fanin(Pin{some, 0}, copy.primary_inputs()[0]);
  }
  validate_or_throw(net);  // original untouched
}

TEST(Topo, OrderRespectsEdges) {
  const Network net = rapids::testing::random_mapped_network(9);
  const std::vector<GateId> order = topological_order(net);
  std::vector<int> rank(net.id_bound(), -1);
  for (std::size_t i = 0; i < order.size(); ++i) rank[order[i]] = static_cast<int>(i);
  net.for_each_gate([&](GateId g) {
    for (const GateId f : net.fanins(g)) {
      EXPECT_LT(rank[f], rank[g]);
    }
  });
}

TEST(Topo, LevelsMonotone) {
  const Network net = rapids::testing::random_mapped_network(10);
  const std::vector<int> level = logic_levels(net);
  net.for_each_gate([&](GateId g) {
    if (net.type(g) == GateType::Output) return;
    for (const GateId f : net.fanins(g)) {
      EXPECT_LT(level[f], level[g]);
    }
  });
  EXPECT_GT(network_depth(net), 0);
}

TEST(Topo, ConeContainment) {
  NetworkBuilder b;
  const GateId x = b.input("x"), y = b.input("y");
  const GateId g = b.and_({x, y});
  const GateId h = b.inv(g);
  b.output("f", h);
  const Network net = b.take();

  const auto fic = fanin_cone(net, h);
  EXPECT_TRUE(std::find(fic.begin(), fic.end(), x) != fic.end());
  EXPECT_TRUE(std::find(fic.begin(), fic.end(), g) != fic.end());
  const auto foc = fanout_cone(net, x);
  EXPECT_TRUE(std::find(foc.begin(), foc.end(), h) != foc.end());
  EXPECT_TRUE(reaches(net, x, h));
  EXPECT_FALSE(reaches(net, h, x));
}

TEST(Validate, DetectsCycle) {
  NetworkBuilder b;
  const GateId x = b.input("x");
  const GateId g = b.and_({x, x});
  const GateId h = b.and_({g, x});
  b.output("f", h);
  Network net = b.take();
  net.set_fanin(Pin{g, 1}, h);  // g <- h <- g: cycle
  EXPECT_FALSE(is_acyclic(net));
  EXPECT_FALSE(validate(net).empty());
}

TEST(Validate, CleanNetworkPasses) {
  const Network net = rapids::testing::random_mapped_network(77);
  EXPECT_TRUE(validate(net).empty());
}

// --- simplify ---------------------------------------------------------------

TEST(Simplify, ControllingConstantFoldsGate) {
  NetworkBuilder b;
  const GateId x = b.input("x");
  const GateId g = b.and_({x, b.const0()});
  b.output("f", g);
  Network net = b.take();
  propagate_constants(net);
  // f is now constant 0.
  const GateId po = net.primary_outputs()[0];
  EXPECT_EQ(net.type(net.po_driver(po)), GateType::Const0);
}

TEST(Simplify, NonControllingConstantDropsInput) {
  NetworkBuilder b;
  const GateId x = b.input("x"), y = b.input("y");
  const GateId g = b.and_({x, y, b.const1()});
  b.output("f", g);
  Network net = b.take();
  const Network golden = net.clone();
  propagate_constants(net);
  EXPECT_EQ(net.fanin_count(net.po_driver(net.primary_outputs()[0])), 2u);
  EXPECT_TRUE(check_equivalence(golden, net).equivalent);
}

TEST(Simplify, XorConstantFlipsParity) {
  NetworkBuilder b;
  const GateId x = b.input("x"), y = b.input("y");
  const GateId g = b.xor_({x, y, b.const1()});
  b.output("f", g);
  Network net = b.take();
  const Network golden = net.clone();
  propagate_constants(net);
  EXPECT_TRUE(check_equivalence(golden, net).equivalent);
  // x ^ y ^ 1 should become XNOR or XOR+INV — either way 2-input.
  EXPECT_EQ(net.fanin_count(net.po_driver(net.primary_outputs()[0])), 2u);
}

TEST(Simplify, SingleInputGateBecomesBufInv) {
  NetworkBuilder b;
  const GateId x = b.input("x");
  const GateId g = b.nand({x, b.const1()});
  b.output("f", g);
  Network net = b.take();
  const Network golden = net.clone();
  simplify(net);
  EXPECT_TRUE(check_equivalence(golden, net).equivalent);
  // NAND(x, 1) == INV(x).
  EXPECT_EQ(net.type(net.po_driver(net.primary_outputs()[0])), GateType::Inv);
}

TEST(Simplify, CollapseBufferChains) {
  NetworkBuilder b;
  const GateId x = b.input("x");
  const GateId v = b.buf(b.buf(b.inv(b.inv(x))));
  b.output("f", v);
  Network net = b.take();
  const Network golden = net.clone();
  collapse_buffers(net);
  EXPECT_TRUE(check_equivalence(golden, net).equivalent);
  EXPECT_EQ(net.po_driver(net.primary_outputs()[0]), x);
}

TEST(Simplify, RandomNetworksPreserveFunction) {
  for (const std::uint64_t seed : {21u, 22u, 23u, 24u}) {
    Network net = rapids::testing::random_mapped_network(seed);
    const Network golden = net.clone();
    simplify(net);
    validate_or_throw(net);
    EXPECT_TRUE(check_equivalence(golden, net).equivalent) << "seed " << seed;
  }
}

TEST(Simplify, SweepRemovesDanglingCone) {
  NetworkBuilder b;
  const GateId x = b.input("x"), y = b.input("y");
  const GateId used = b.and_({x, y});
  b.inv(used);  // dangling inverter
  b.output("f", used);
  Network net = b.take();
  EXPECT_EQ(net.sweep_dangling(), 1u);
  EXPECT_EQ(net.num_logic_gates(), 1u);
}

}  // namespace
}  // namespace rapids
