// Workload generators: functional correctness (they really add / multiply /
// correct errors) and structural properties the experiments rely on.
#include <gtest/gtest.h>

#include <functional>
#include <unordered_map>

#include "gen/arith.hpp"
#include "gen/control.hpp"
#include "gen/ecc.hpp"
#include "gen/suite.hpp"
#include "netlist/validate.hpp"
#include "sym/gisg.hpp"
#include "test_helpers.hpp"
#include "verify/simulator.hpp"

namespace rapids {
namespace {

/// Drive named inputs from an integer assignment and read named outputs.
class Harness {
 public:
  explicit Harness(const Network& net) : net_(net), sim_(net) {}

  void set_inputs(const std::string& prefix, int width, std::uint64_t value) {
    for (int i = 0; i < width; ++i) {
      values_[net_.find(prefix + std::to_string(i))] =
          (value >> i) & 1 ? ~0ULL : 0ULL;
    }
  }
  void set_input(const std::string& name, bool v) {
    values_[net_.find(name)] = v ? ~0ULL : 0ULL;
  }

  void run() {
    std::vector<std::uint64_t> words;
    for (const GateId pi : net_.primary_inputs()) {
      auto it = values_.find(pi);
      words.push_back(it == values_.end() ? 0 : it->second);
    }
    sim_.run(words);
  }

  std::uint64_t read(const std::string& prefix, int width) const {
    std::uint64_t v = 0;
    for (int i = 0; i < width; ++i) {
      const GateId po = net_.find(prefix + std::to_string(i));
      EXPECT_NE(po, kNullGate) << prefix << i;
      if (sim_.value(po) & 1ULL) v |= 1ULL << i;
    }
    return v;
  }
  bool read_bit(const std::string& name) const {
    return sim_.value(net_.find(name)) & 1ULL;
  }

 private:
  const Network& net_;
  Simulator sim_;
  std::unordered_map<GateId, std::uint64_t> values_;
};

TEST(Gen, MultiplierComputesProducts) {
  const Network net = make_array_multiplier(4);
  validate_or_throw(net);
  for (std::uint64_t a = 0; a < 16; ++a) {
    for (std::uint64_t b = 0; b < 16; ++b) {
      Harness h(net);
      h.set_inputs("a", 4, a);
      h.set_inputs("b", 4, b);
      h.run();
      EXPECT_EQ(h.read("p", 8), a * b) << a << " * " << b;
    }
  }
}

TEST(Gen, AdderComparatorAddsAndCompares) {
  const Network net = make_adder_comparator(6, true);
  validate_or_throw(net);
  Rng rng(5);
  for (int t = 0; t < 200; ++t) {
    const std::uint64_t a = rng.next_below(64), b = rng.next_below(64);
    const bool cin = rng.next_bool();
    Harness h(net);
    h.set_inputs("a", 6, a);
    h.set_inputs("b", 6, b);
    h.set_input("cin", cin);
    h.run();
    const std::uint64_t total = a + b + (cin ? 1 : 0);
    EXPECT_EQ(h.read("s", 6) | (static_cast<std::uint64_t>(h.read_bit("cout")) << 6),
              total);
    EXPECT_EQ(h.read_bit("gt"), a > b);
    EXPECT_EQ(h.read_bit("eq"), a == b);
    EXPECT_EQ(h.read_bit("par_a"), __builtin_parityll(a) != 0);
  }
}

TEST(Gen, SecCorrectorFixesSingleBitErrors) {
  const int kData = 8;
  const Network net = make_sec_corrector(kData);
  validate_or_throw(net);
  Rng rng(7);
  for (int t = 0; t < 50; ++t) {
    const std::uint64_t data = rng.next_below(1ULL << kData);

    // First find the check bits for this word: feed zeros, read syndrome.
    Harness probe(net);
    probe.set_inputs("d", kData, data);
    probe.set_inputs("c", 4, 0);
    probe.run();
    std::uint64_t check = probe.read("syn", 4);  // syndrome == parity of data

    // Clean word: syndrome zero, data passes through.
    Harness clean(net);
    clean.set_inputs("d", kData, data);
    clean.set_inputs("c", 4, check);
    clean.run();
    EXPECT_EQ(clean.read("syn", 4), 0u);
    EXPECT_EQ(clean.read("q", kData), data);

    // Flip one data bit: corrector must restore the original word.
    const int flip = static_cast<int>(rng.next_below(kData));
    Harness bad(net);
    bad.set_inputs("d", kData, data ^ (1ULL << flip));
    bad.set_inputs("c", 4, check);
    bad.run();
    EXPECT_EQ(bad.read("q", kData), data) << "flip bit " << flip;
  }
}

TEST(Gen, SecdedDetectsDoubleErrors) {
  const int kData = 8;
  const Network net = make_secded_corrector(kData);
  validate_or_throw(net);
  // Establish clean encoding.
  Rng rng(9);
  const std::uint64_t data = rng.next_below(1ULL << kData);
  // Find check bits + overall parity by probing with zeros:
  Harness probe(net);
  probe.set_inputs("d", kData, data);
  probe.set_inputs("c", 4, 0);
  probe.set_input("pov", false);
  probe.run();
  // With zero checks, sec/ded flags depend on syndrome; we only verify the
  // structural claim on known-clean encodings below.

  // Find the clean EVEN-PARITY encoding by brute force: syndrome zero
  // (sec == ded == 0 on the clean word) AND a single-bit flip classified as
  // a correctable single error (that pins down the overall-parity input).
  for (std::uint64_t c = 0; c < 16; ++c) {
    for (int pov = 0; pov < 2; ++pov) {
      Harness h(net);
      h.set_inputs("d", kData, data);
      h.set_inputs("c", 4, c);
      h.set_input("pov", pov != 0);
      h.run();
      if (h.read_bit("sec") || h.read_bit("ded")) continue;
      Harness single(net);
      single.set_inputs("d", kData, data ^ 0b1);
      single.set_inputs("c", 4, c);
      single.set_input("pov", pov != 0);
      single.run();
      if (!single.read_bit("sec")) continue;  // odd-parity twin; skip
      EXPECT_FALSE(single.read_bit("ded"));

      // Double error: syndrome nonzero but parity clean -> detected only.
      Harness dbl(net);
      dbl.set_inputs("d", kData, data ^ 0b11);  // flip two data bits
      dbl.set_inputs("c", 4, c);
      dbl.set_input("pov", pov != 0);
      dbl.run();
      EXPECT_TRUE(dbl.read_bit("ded")) << "double error undetected";
      EXPECT_FALSE(dbl.read_bit("sec"));
      return;
    }
  }
  FAIL() << "no clean encoding found";
}

TEST(Gen, PriorityControllerGrantsHighestPriority) {
  const Network net = make_priority_controller(8);
  validate_or_throw(net);
  Rng rng(11);
  for (int t = 0; t < 100; ++t) {
    const std::uint64_t req = rng.next_below(256);
    const std::uint64_t mask = rng.next_below(256);
    Harness h(net);
    h.set_inputs("req", 8, req);
    h.set_inputs("mask", 8, mask);
    h.run();
    const std::uint64_t enabled = req & ~mask;
    const int expect_winner = enabled == 0 ? -1 : __builtin_ctzll(enabled);
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(h.read_bit("grant" + std::to_string(i)), i == expect_winner);
    }
    EXPECT_EQ(h.read_bit("any"), enabled != 0);
    if (expect_winner >= 0) {
      EXPECT_EQ(h.read("idx", 3), static_cast<std::uint64_t>(expect_winner));
    }
  }
}

TEST(Gen, AluAddAndLogicOps) {
  const Network net = make_alu(4, 1, "t");
  validate_or_throw(net);
  Rng rng(13);
  struct Op {
    int code;
    std::function<std::uint64_t(std::uint64_t, std::uint64_t)> fn;
  };
  // sel decode uses op bits: code 2=AND, 3=OR, 4=XOR per make_alu.
  const std::vector<Op> ops = {
      {2, [](std::uint64_t a, std::uint64_t b) { return a & b; }},
      {3, [](std::uint64_t a, std::uint64_t b) { return a | b; }},
      {4, [](std::uint64_t a, std::uint64_t b) { return a ^ b; }},
      {5, [](std::uint64_t a, std::uint64_t b) { (void)b; return a; }},
  };
  for (int t = 0; t < 60; ++t) {
    const std::uint64_t a = rng.next_below(16), b = rng.next_below(16);
    for (const Op& op : ops) {
      Harness h(net);
      h.set_inputs("t0_a", 4, a);
      h.set_inputs("t0_b", 4, b);
      h.set_inputs("t_op", 3, static_cast<std::uint64_t>(op.code));
      h.set_input("t_cin", false);
      h.run();
      EXPECT_EQ(h.read("t0_y", 4), op.fn(a, b) & 0xF) << "op " << op.code;
    }
    // Addition (code 0).
    Harness h(net);
    h.set_inputs("t0_a", 4, a);
    h.set_inputs("t0_b", 4, b);
    h.set_inputs("t_op", 3, 0);
    h.set_input("t_cin", false);
    h.run();
    EXPECT_EQ(h.read("t0_y", 4) | (static_cast<std::uint64_t>(h.read_bit("t0_cout")) << 4),
              a + b);
    EXPECT_EQ(h.read_bit("t0_gt"), a > b);
    EXPECT_EQ(h.read_bit("t0_eq"), a == b);
  }
}

TEST(Gen, PlaIsTwoLevelWithWideSupergates) {
  PlaSpec spec;
  spec.num_inputs = 30;
  spec.num_outputs = 10;
  spec.num_products = 40;
  spec.min_literals = 10;
  spec.max_literals = 20;
  spec.seed = 3;
  const Network net = make_pla(spec);
  validate_or_throw(net);
  const GisgPartition part = extract_gisg(net);
  EXPECT_GE(part.max_leaves(), 10);
}

TEST(Gen, ControlMixHasManyPseudoIos) {
  ControlMixSpec spec;
  spec.num_blocks = 4;
  spec.seed = 4;
  const Network net = make_control_mix(spec);
  validate_or_throw(net);
  EXPECT_GE(net.primary_inputs().size(), 4u * 12u);
  EXPECT_GE(net.primary_outputs().size(), 4u * 6u);
}

TEST(Gen, SuiteHasNineteenCircuits) {
  EXPECT_EQ(benchmark_suite().size(), 19u);
  EXPECT_THROW(make_benchmark("bogus"), InputError);
}

TEST(Gen, SuiteCircuitsBuildAndValidate) {
  for (const BenchmarkInfo& info : benchmark_suite()) {
    if (info.paper_gates > 2000) continue;  // big ones exercised in benches
    const Network net = make_benchmark(info.name);
    validate_or_throw(net);
    EXPECT_GT(net.num_logic_gates(), 50u) << info.name;
  }
}

TEST(Gen, GeneratorsAreDeterministic) {
  const Network a = make_benchmark("x3");
  const Network b = make_benchmark("x3");
  EXPECT_EQ(output_signature(a, 1), output_signature(b, 1));
}

}  // namespace
}  // namespace rapids
