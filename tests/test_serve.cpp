// rapids serve: job-line parsing, the concurrent batch driver, and the
// contract that a served job's artifacts are byte-identical to the
// equivalent one-shot flow.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "flow/flow.hpp"
#include "io/blif_writer.hpp"
#include "serve/serve.hpp"
#include "test_helpers.hpp"
#include "util/assert.hpp"

namespace rapids {
namespace {

using rapids::testing::lib035;

std::string read_file(const std::string& path) {
  std::ifstream is(path);
  EXPECT_TRUE(is.good()) << path;
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

TEST(Serve, ParsesFullJobLine) {
  const ServeJob j = parse_serve_job(
      "job1 c432 mode=gsg seed=7 effort=2.5 iters=3 threads=2 verify=0 "
      "out=a.blif metrics=m.json provenance=p.json",
      0);
  EXPECT_EQ(j.id, "job1");
  EXPECT_EQ(j.circuit, "c432");
  EXPECT_EQ(j.mode, OptMode::Gsg);
  EXPECT_EQ(j.seed, 7u);
  EXPECT_DOUBLE_EQ(j.effort, 2.5);
  EXPECT_EQ(j.iters, 3);
  EXPECT_EQ(j.threads, 2);
  EXPECT_FALSE(j.verify);
  EXPECT_EQ(j.out_blif, "a.blif");
  EXPECT_EQ(j.out_metrics, "m.json");
  EXPECT_EQ(j.out_provenance, "p.json");
}

TEST(Serve, DefaultsMirrorOneShotFlow) {
  const ServeJob j = parse_serve_job("j c499", 0);
  const FlowOptions flow_defaults;
  EXPECT_EQ(j.mode, OptMode::GsgPlusGS);
  EXPECT_EQ(j.seed, flow_defaults.placer.seed);
  EXPECT_DOUBLE_EQ(j.effort, flow_defaults.placer.effort);
  EXPECT_EQ(j.iters, flow_defaults.opt.max_iterations);
  EXPECT_EQ(j.threads, flow_defaults.opt.threads);
  EXPECT_TRUE(j.verify);
  EXPECT_TRUE(j.out_blif.empty());
}

TEST(Serve, RejectsMalformedJobLines) {
  EXPECT_THROW(parse_serve_job("only-an-id", 0), InputError);
  EXPECT_THROW(parse_serve_job("id ckt bogus-token", 0), InputError);
  EXPECT_THROW(parse_serve_job("id ckt nope=1", 0), InputError);
  EXPECT_THROW(parse_serve_job("id ckt seed=notanumber", 0), InputError);
  EXPECT_THROW(parse_serve_job("id ckt mode=frobnicate", 0), InputError);
  EXPECT_THROW(parse_serve_job("id ckt threads=0", 0), InputError);
}

TEST(ServeSlow, BatchJobsMatchOneShotFlows) {
  const std::string dir = ::testing::TempDir();
  std::vector<ServeJob> jobs = {
      parse_serve_job("sj1 c432 seed=5 effort=1 iters=2 threads=2 out=" + dir +
                          "sj1.blif metrics=" + dir + "sj1.metrics.json",
                      0),
      parse_serve_job("sj2 c499 seed=9 effort=1 iters=2 out=" + dir +
                          "sj2.blif provenance=" + dir + "sj2.prov.json",
                      1),
  };
  ServeOptions options;
  options.max_concurrent = 2;
  const std::vector<ServeJobResult> results = serve_batch(jobs, options);
  ASSERT_EQ(results.size(), 2u);
  for (const ServeJobResult& r : results) {
    EXPECT_TRUE(r.ok) << r.id << ": " << r.error;
    EXPECT_TRUE(r.verified) << r.id;
    EXPECT_GT(r.initial_delay, 0.0) << r.id;
  }

  // Reference: the same flows through the flow API directly (what the
  // one-shot CLI runs), on the process-default context — the served BLIF
  // must match byte for byte.
  for (const ServeJob& job : jobs) {
    FlowOptions options_ref;
    options_ref.placer.seed = job.seed;
    options_ref.placer.effort = job.effort;
    options_ref.opt.max_iterations = job.iters;
    options_ref.opt.threads = job.threads;
    PreparedCircuit prepared =
        prepare_benchmark(job.circuit, lib035(), options_ref);
    const ModeRun run =
        run_mode(std::move(prepared), lib035(), job.mode, options_ref);
    ASSERT_TRUE(run.verified) << job.id;
    std::ostringstream blif;
    write_blif(run.optimized, blif, job.circuit);
    EXPECT_EQ(read_file(dir + job.id + ".blif"), blif.str()) << job.id;
  }

  // The per-session JSON artifacts are keyed by the job's session id.
  EXPECT_NE(read_file(dir + "sj1.metrics.json").find("\"session.id\": \"sj1\""),
            std::string::npos);
  EXPECT_NE(read_file(dir + "sj2.prov.json").find("\"session\": \"sj2\""),
            std::string::npos);
}

TEST(ServeSlow, LoopProcessesStreamUntilQuit) {
  std::istringstream in(
      "# comment lines and blanks are skipped\n"
      "\n"
      "not-enough-tokens\n"
      "ok1 c432 effort=1 iters=1\n"
      "quit\n"
      "never c499\n");
  std::ostringstream out;
  ServeOptions options;
  options.max_concurrent = 2;
  const int failed = serve_loop(in, out, options);
  EXPECT_EQ(failed, 1);  // the parse error; ok1 succeeded
  const std::string log = out.str();
  EXPECT_NE(log.find("[serve] ok1:"), std::string::npos) << log;
  EXPECT_NE(log.find("1 job completed, 1 failed"), std::string::npos) << log;
  EXPECT_EQ(log.find("never"), std::string::npos) << log;  // after quit
}

}  // namespace
}  // namespace rapids
