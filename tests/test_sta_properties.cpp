// Physical sanity properties of the timing stack, swept over seeds.
#include <gtest/gtest.h>

#include <set>

#include "netlist/builder.hpp"
#include "place/placer.hpp"
#include "rewire/swap.hpp"
#include "sym/gisg.hpp"
#include "sym/symmetry.hpp"
#include "test_helpers.hpp"
#include "timing/sta.hpp"

namespace rapids {
namespace {

using rapids::testing::lib035;
using rapids::testing::mapped;
using rapids::testing::random_mapped_network;

class StaProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    net_ = mapped(random_mapped_network(GetParam(), 12, 80, 8));
    PlacerOptions popt;
    popt.effort = 1.5;
    popt.num_temps = 6;
    popt.seed = GetParam();
    pl_ = place(net_, lib035(), popt);
  }
  Network net_;
  Placement pl_;
};

TEST_P(StaProperty, ArrivalsNonNegativeAndFinite) {
  Sta sta(net_, lib035(), pl_);
  net_.for_each_gate([&](GateId g) {
    const RiseFall a = sta.arrival_rf(g);
    EXPECT_GE(a.rise, 0.0) << net_.name(g);
    EXPECT_GE(a.fall, 0.0) << net_.name(g);
    EXPECT_LT(a.worst(), 1e6) << net_.name(g);
  });
}

TEST_P(StaProperty, ArrivalMonotoneAlongCriticalPath) {
  Sta sta(net_, lib035(), pl_);
  const auto path = sta.critical_path();
  for (std::size_t i = 1; i < path.size(); ++i) {
    EXPECT_LE(sta.arrival(path[i - 1]), sta.arrival(path[i]) + 1e-9)
        << "at step " << i;
  }
}

TEST_P(StaProperty, UpsizingCriticalGateNeverSlowsItself) {
  // A gate's own pin->out delay strictly decreases with drive (same load);
  // total critical delay may vary (input caps grow), but the resized gate's
  // delay contribution at fixed load must not increase.
  Sta sta(net_, lib035(), pl_);
  const auto path = sta.critical_path();
  for (const GateId g : path) {
    if (!is_logic(net_.type(g)) || net_.cell(g) < 0) continue;
    const Cell& cur = lib035().cell(net_.cell(g));
    const int bigger = lib035().find(cur.function, cur.num_inputs, 3);
    if (bigger < 0 || bigger == net_.cell(g)) continue;
    const double load = sta.star(g).total_cap();
    const RiseFall before = gate_delay(cur, load);
    const RiseFall after = gate_delay(lib035().cell(bigger), load);
    EXPECT_LE(after.rise, before.rise + 0.05);  // intrinsic penalty is small
    break;
  }
}

TEST_P(StaProperty, SlacksConsistentWithArrivalsAndRequired) {
  Sta sta(net_, lib035(), pl_);
  sta.set_required_time(sta.critical_delay());
  sta.refresh_required();
  // No gate on the critical path has positive slack beyond tolerance.
  const auto path = sta.critical_path();
  for (const GateId g : path) {
    EXPECT_LE(sta.slack(g), 1e-6) << net_.name(g);
  }
  // Worst slack over the whole design is ~0 (the critical path itself).
  EXPECT_NEAR(sta.worst_slack(), 0.0, 1e-6);
}

TEST_P(StaProperty, TransactionChainsStayConsistent) {
  // Interleave committed and rolled-back swaps; end state must equal a
  // fresh STA on the final network. STA and swaps share one placement so
  // inserted inverters are visible to both.
  Placement pl = pl_;
  Sta sta(net_, lib035(), pl);
  const GisgPartition part = extract_gisg(net_);
  const auto swaps = enumerate_all_swaps(part, net_);
  if (swaps.empty()) {
    SUCCEED();
    return;
  }
  // Contract (same as the optimizer's): candidates come from one
  // extraction, so at most one COMMIT per supergate — a second swap in a
  // restructured supergate could close a combinational loop.
  std::set<int> committed_sgs;
  int applied = 0;
  for (std::size_t i = 0; i < swaps.size() && applied < 8; ++i) {
    // Never touch (even as a probe) a supergate already restructured by a
    // committed swap: its remaining candidates are stale.
    if (committed_sgs.count(swaps[i].sg_index) != 0) continue;
    const bool commit = (i % 2 == 0);
    sta.begin();
    SwapEdit edit = apply_swap(net_, pl, lib035(), swaps[i]);
    for (const GateId d : edit.dirty_nets) sta.invalidate_net(d);
    sta.propagate();
    if (commit) {
      sta.commit();
      committed_sgs.insert(swaps[i].sg_index);
      ++applied;
    } else {
      undo_swap(net_, pl, edit);
      sta.rollback();
    }
  }
  Sta fresh(net_, lib035(), pl);
  EXPECT_NEAR(sta.critical_delay(), fresh.critical_delay(), 1e-5);
  net_.for_each_gate([&](GateId g) {
    EXPECT_NEAR(sta.arrival(g), fresh.arrival(g), 1e-5) << net_.name(g);
  });
}

TEST_P(StaProperty, RequiredTimesDecreaseTowardInputs) {
  Sta sta(net_, lib035(), pl_);
  sta.refresh_required();
  // For any driver, its required time is no later than (sink required -
  // wire). Spot-check via slack non-negativity relation along fanins of the
  // worst PO.
  const auto path = sta.critical_path();
  ASSERT_FALSE(path.empty());
  for (std::size_t i = 1; i < path.size(); ++i) {
    // required is monotone along the path as well.
    const double slack_prev = sta.slack(path[i - 1]);
    const double slack_next = sta.slack(path[i]);
    EXPECT_NEAR(slack_prev, slack_next, 0.5)
        << "slack discontinuity along the critical path";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StaProperty,
                         ::testing::Values(501, 502, 503, 504, 505, 506, 507, 508, 509,
                                           510));

}  // namespace
}  // namespace rapids
