// O(dirty) replica delta sync: differential equality against the full
// clone path (network bytes, STA state, placement), multi-epoch catch-up
// through the journal, fallback after out-of-band run_full, and the
// flow-level guarantees — threads 1 vs N bit-identity on generated
// circuits and delta-on vs delta-off netlist identity.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "engine/rewire_engine.hpp"
#include "flow/flow.hpp"
#include "gen/large.hpp"
#include "io/blif_writer.hpp"
#include "parallel/probe_context.hpp"
#include "place/placer.hpp"
#include "sym/gisg.hpp"
#include "test_helpers.hpp"
#include "timing/sta.hpp"

namespace rapids {
namespace {

using rapids::testing::lib035;

std::string blif_of(const Network& net) {
  std::ostringstream os;
  write_blif(net, os, "delta_sync");
  return os.str();
}

/// Assert the two replicas hold byte-identical probe-visible state.
void expect_replicas_equal(const ProbeContext& delta, const ProbeContext& clone) {
  EXPECT_EQ(blif_of(delta.replica_net()), blif_of(clone.replica_net()));
  EXPECT_EQ(delta.replica_sta().critical_delay(), clone.replica_sta().critical_delay());
  const auto da = delta.replica_sta().arrivals();
  const auto ca = clone.replica_sta().arrivals();
  ASSERT_EQ(da.size(), ca.size());
  for (std::size_t i = 0; i < da.size(); ++i) {
    EXPECT_EQ(da[i].rise, ca[i].rise) << "arrival mismatch at gate " << i;
    EXPECT_EQ(da[i].fall, ca[i].fall) << "arrival mismatch at gate " << i;
  }
}

struct LiveFixture {
  Network net;
  Placement pl;
  Sta sta;
  RewireEngine engine;

  explicit LiveFixture(std::uint64_t seed)
      : net(testing::mapped(testing::random_mapped_network(seed))),
        pl(make_placement(net)),
        sta(net, lib035(), pl),
        engine(net, pl, lib035(), sta) {}

 private:
  Placement make_placement(const Network& n) {
    PlacerOptions popt;
    popt.effort = 1.0;
    popt.num_temps = 4;
    return place(n, lib035(), popt);
  }
};

TEST(DeltaSync, DeltaSyncedReplicaMatchesCloneSyncedAcrossEpochs) {
  LiveFixture f(4242);

  ProbeContext delta_ctx(lib035(), 1, 0);
  ProbeContext clone_ctx(lib035(), 1, 1);
  clone_ctx.set_delta_sync(false);

  delta_ctx.sync(f.engine);
  clone_ctx.sync(f.engine);
  expect_replicas_equal(delta_ctx, clone_ctx);

  // Commit a stream of real swaps on the live engine; after every epoch
  // both replicas re-sync and must agree byte for byte — and match the
  // live state (delta path correctness, not just mutual consistency).
  int commits = 0;
  for (int round = 0; round < 16 && commits < 10; ++round) {
    const std::vector<SwapCandidate> cands =
        enumerate_all_swaps(f.engine.partition(), f.net);
    if (cands.empty()) break;
    f.engine.commit(EngineMove::swap(cands[static_cast<std::size_t>(commits) %
                                           cands.size()]));
    ++commits;
    delta_ctx.sync(f.engine);
    clone_ctx.sync(f.engine);
    ASSERT_TRUE(delta_ctx.synced_to(f.engine.epoch()));
    ASSERT_TRUE(clone_ctx.synced_to(f.engine.epoch()));
    expect_replicas_equal(delta_ctx, clone_ctx);
    EXPECT_EQ(blif_of(delta_ctx.replica_net()), blif_of(f.net));
    EXPECT_EQ(delta_ctx.replica_sta().critical_delay(), f.sta.critical_delay());
  }
  ASSERT_GE(commits, 3) << "fixture produced too few committable swaps";

  // The delta path must actually have been exercised (first sync is full,
  // the rest ride the journal).
  const ReplicaSyncStats ds = delta_ctx.take_sync_stats();
  EXPECT_GE(ds.delta_syncs, static_cast<std::uint64_t>(commits));
  const ReplicaSyncStats cs = clone_ctx.take_sync_stats();
  EXPECT_EQ(cs.delta_syncs, 0u);
  EXPECT_GE(cs.full_syncs, static_cast<std::uint64_t>(commits));
  // Delta syncs move less data than clones on these small commit batches.
  EXPECT_GT(ds.bytes_delta, 0u);
}

TEST(DeltaSync, LaggingReplicaCatchesUpOverMultipleEpochs) {
  LiveFixture f(777);
  ProbeContext lag_ctx(lib035(), 1, 0);
  ProbeContext clone_ctx(lib035(), 1, 1);
  clone_ctx.set_delta_sync(false);

  lag_ctx.sync(f.engine);
  int commits = 0;
  for (int round = 0; round < 12 && commits < 6; ++round) {
    const std::vector<SwapCandidate> cands =
        enumerate_all_swaps(f.engine.partition(), f.net);
    if (cands.empty()) break;
    f.engine.commit(EngineMove::swap(cands[0]));
    ++commits;
    // The lagging replica only syncs every third epoch: its delta spans
    // several journal marks at once.
    if (commits % 3 == 0) {
      lag_ctx.sync(f.engine);
      clone_ctx.sync(f.engine);
      ASSERT_TRUE(lag_ctx.synced_to(f.engine.epoch()));
      expect_replicas_equal(lag_ctx, clone_ctx);
    }
  }
  ASSERT_GE(commits, 3);
}

TEST(DeltaSync, FallsBackToFullSyncAfterOutOfBandRunFull) {
  LiveFixture f(90125);
  ProbeContext ctx(lib035(), 1, 0);
  ctx.sync(f.engine);

  const std::vector<SwapCandidate> cands =
      enumerate_all_swaps(f.engine.partition(), f.net);
  ASSERT_FALSE(cands.empty());
  f.engine.commit(EngineMove::swap(cands[0]));
  // An out-of-band full STA pass bumps the state version: the journal's
  // incremental slices no longer describe the replica's baseline, so the
  // next sync must take the full path and still land bit-exact.
  f.sta.run_full();
  ctx.sync(f.engine);
  ASSERT_TRUE(ctx.synced_to(f.engine.epoch()));
  EXPECT_EQ(blif_of(ctx.replica_net()), blif_of(f.net));
  EXPECT_EQ(ctx.replica_sta().critical_delay(), f.sta.critical_delay());
  const ReplicaSyncStats st = ctx.take_sync_stats();
  EXPECT_GE(st.full_syncs, 2u);  // initial sync + post-run_full fallback
}

// --- flow level ---------------------------------------------------------------

TEST(DeltaSyncFlowSlow, ThreadCountsBitIdenticalOnGeneratedCircuit) {
  // The headline determinism contract, exercised on a generated circuit
  // large enough that epochs recycle gate ids (gsg adds and removes
  // inverters): threads 1 vs 4, delta sync on, byte-identical BLIF.
  LargeCircuitOptions lopt;
  lopt.target_gates = 1200;
  lopt.seed = 3;
  lopt.num_inputs = 64;
  const Network src = make_large_circuit(lopt);

  FlowOptions base;
  base.placer.effort = 1.0;
  base.placer.num_temps = 4;
  base.opt.max_iterations = 2;
  base.verify = false;
  const PreparedCircuit prepared = prepare_circuit("gen1200", src, lib035(), base);

  FlowOptions serial = base;
  serial.opt.threads = 1;
  FlowOptions parallel = base;
  parallel.opt.threads = 4;
  const ModeRun one = run_mode(prepared, lib035(), OptMode::Gsg, serial);
  const ModeRun four = run_mode(prepared, lib035(), OptMode::Gsg, parallel);
  EXPECT_EQ(one.result.final_delay, four.result.final_delay);
  EXPECT_EQ(one.result.swaps_committed, four.result.swaps_committed);
  EXPECT_EQ(blif_of(one.optimized), blif_of(four.optimized));
  // threads=1 probes the live engine and never syncs; threads=4 must have
  // ridden the delta path.
  EXPECT_EQ(one.result.replica_delta_syncs + one.result.replica_full_syncs, 0u);
  EXPECT_GT(four.result.replica_delta_syncs, 0u);
}

TEST(DeltaSyncFlowSlow, DeltaOnOffProduceIdenticalNetlists) {
  LargeCircuitOptions lopt;
  lopt.target_gates = 800;
  lopt.seed = 11;
  lopt.num_inputs = 48;
  const Network src = make_large_circuit(lopt);

  FlowOptions base;
  base.placer.effort = 1.0;
  base.placer.num_temps = 4;
  base.opt.max_iterations = 2;
  base.opt.threads = 4;
  base.verify = false;
  const PreparedCircuit prepared = prepare_circuit("gen800", src, lib035(), base);

  FlowOptions with_delta = base;
  with_delta.opt.delta_replica_sync = true;
  FlowOptions without = base;
  without.opt.delta_replica_sync = false;
  const ModeRun on = run_mode(prepared, lib035(), OptMode::Gsg, with_delta);
  const ModeRun off = run_mode(prepared, lib035(), OptMode::Gsg, without);
  EXPECT_EQ(on.result.final_delay, off.result.final_delay);
  EXPECT_EQ(blif_of(on.optimized), blif_of(off.optimized));
  EXPECT_GT(on.result.replica_delta_syncs, 0u);
  EXPECT_EQ(off.result.replica_delta_syncs, 0u);
}

TEST(DeltaSyncFlowSlow, PruneCacheOnOffProduceIdenticalNetlists) {
  const Network src = testing::random_mapped_network(55);

  FlowOptions base;
  base.placer.effort = 1.0;
  base.placer.num_temps = 4;
  base.opt.max_iterations = 3;
  base.verify = false;
  const PreparedCircuit prepared = prepare_circuit("prune", src, lib035(), base);

  FlowOptions cached = base;
  cached.opt.prune_cache = true;
  FlowOptions uncached = base;
  uncached.opt.prune_cache = false;
  const ModeRun on = run_mode(prepared, lib035(), OptMode::GsgPlusGS, cached);
  const ModeRun off = run_mode(prepared, lib035(), OptMode::GsgPlusGS, uncached);
  EXPECT_EQ(on.result.final_delay, off.result.final_delay);
  EXPECT_EQ(blif_of(on.optimized), blif_of(off.optimized));
}

}  // namespace
}  // namespace rapids
