// IO round trips: BLIF, ISCAS bench, placement.
#include <gtest/gtest.h>

#include <sstream>

#include "io/bench_reader.hpp"
#include "io/bench_writer.hpp"
#include "io/blif_reader.hpp"
#include "io/blif_writer.hpp"
#include "io/placement_io.hpp"
#include "netlist/builder.hpp"
#include "netlist/validate.hpp"
#include "place/placer.hpp"
#include "test_helpers.hpp"
#include "verify/equivalence.hpp"

namespace rapids {
namespace {

using rapids::testing::lib035;
using rapids::testing::random_mapped_network;

TEST(Blif, ParsesSimpleSop) {
  std::stringstream ss(
      ".model tiny\n"
      ".inputs a b c\n"
      ".outputs f\n"
      ".names a b c f\n"
      "11- 1\n"
      "--1 1\n"
      ".end\n");
  const Network net = read_blif(ss);
  validate_or_throw(net);
  EXPECT_EQ(net.primary_inputs().size(), 3u);
  EXPECT_EQ(net.primary_outputs().size(), 1u);

  // f = ab + c
  NetworkBuilder b;
  const GateId a = b.input("a"), bb = b.input("b"), c = b.input("c");
  b.output("f", b.or_({b.and_({a, bb}), c}));
  EXPECT_TRUE(check_equivalence(b.net(), net).equivalent);
}

TEST(Blif, ZeroCoverIsComplement) {
  std::stringstream ss(
      ".model tiny\n.inputs a b\n.outputs f\n"
      ".names a b f\n"
      "11 0\n"
      ".end\n");
  const Network net = read_blif(ss);
  NetworkBuilder b;
  const GateId a = b.input("a"), bb = b.input("b");
  b.output("f", b.nand({a, bb}));
  EXPECT_TRUE(check_equivalence(b.net(), net).equivalent);
}

TEST(Blif, ConstantsAndContinuation) {
  std::stringstream ss(
      ".model k\n.inputs a\n.outputs f g h\n"
      ".names one\n1\n"
      ".names zero\n"
      ".names a one \\\nf\n11 1\n"
      ".names g\n1\n"
      ".names zero a h\n01 1\n"
      ".end\n");
  const Network net = read_blif(ss);
  validate_or_throw(net);
  // f == a, g == 1, h == a.
  NetworkBuilder b;
  const GateId a = b.input("a");
  b.output("f", b.buf(a));
  b.output("g", b.const1());
  b.output("h", b.buf(a));
  EXPECT_TRUE(check_equivalence(b.net(), net).equivalent);
}

TEST(Blif, LatchesBecomePseudoIo) {
  std::stringstream ss(
      ".model seq\n.inputs a\n.outputs f\n"
      ".latch nq q 0\n"
      ".names a q f\n11 1\n"
      ".names f nq\n1 1\n"
      ".end\n");
  const Network net = read_blif(ss);
  validate_or_throw(net);
  EXPECT_EQ(net.primary_inputs().size(), 2u);   // a + pseudo-PI q
  EXPECT_EQ(net.primary_outputs().size(), 2u);  // f + pseudo-PO q$next
}

TEST(Blif, RoundTripRandomNetworks) {
  for (const std::uint64_t seed : {61u, 62u, 63u}) {
    const Network net = random_mapped_network(seed);
    std::stringstream ss;
    write_blif(net, ss);
    const Network back = read_blif(ss);
    validate_or_throw(back);
    EXPECT_TRUE(check_equivalence(net, back).equivalent) << "seed " << seed;
  }
}

TEST(Blif, ErrorsAreReported) {
  std::stringstream bad1("11 1\n");  // cover row outside .names
  EXPECT_THROW((void)read_blif(bad1), InputError);
  std::stringstream bad2(".model m\n.inputs a\n.outputs f\n.names a f\n111 1\n.end\n");
  EXPECT_THROW((void)read_blif(bad2), InputError);
  std::stringstream bad3(".model m\n.inputs a\n.outputs nope\n.end\n");
  EXPECT_THROW((void)read_blif(bad3), InputError);
}

TEST(Bench, ParsesIscasStyle) {
  std::stringstream ss(
      "# c-example\n"
      "INPUT(a)\nINPUT(b)\nOUTPUT(f)\n"
      "n1 = NAND(a, b)\n"
      "f = NOT(n1)\n");
  const Network net = read_bench(ss);
  validate_or_throw(net);
  NetworkBuilder b;
  const GateId a = b.input("a"), bb = b.input("b");
  b.output("f", b.inv(b.nand({a, bb})));
  EXPECT_TRUE(check_equivalence(b.net(), net).equivalent);
}

TEST(Bench, DffCutIntoPseudoIo) {
  std::stringstream ss(
      "INPUT(a)\nOUTPUT(f)\n"
      "q = DFF(d)\n"
      "f = AND(a, q)\n"
      "d = NOT(f)\n");
  const Network net = read_bench(ss);
  validate_or_throw(net);
  EXPECT_EQ(net.primary_inputs().size(), 2u);
  EXPECT_EQ(net.primary_outputs().size(), 2u);
}

TEST(Bench, RoundTripRandomNetworks) {
  for (const std::uint64_t seed : {71u, 72u, 73u}) {
    const Network net = random_mapped_network(seed);
    std::stringstream ss;
    write_bench(net, ss);
    const Network back = read_bench(ss);
    validate_or_throw(back);
    EXPECT_TRUE(check_equivalence(net, back).equivalent) << "seed " << seed;
  }
}

TEST(Bench, UnknownSignalRejected) {
  std::stringstream ss("INPUT(a)\nOUTPUT(f)\nf = AND(a, ghost)\n");
  EXPECT_THROW((void)read_bench(ss), InputError);
}

TEST(PlacementIo, RoundTrip) {
  const Network net = rapids::testing::mapped(random_mapped_network(81));
  PlacerOptions popt;
  popt.effort = 1.0;
  popt.num_temps = 4;
  const Placement pl = place(net, lib035(), popt);

  std::stringstream ss;
  write_placement(net, pl, ss);
  const Placement back = read_placement(net, ss);

  EXPECT_NEAR(back.die().width, pl.die().width, 1e-9);
  EXPECT_EQ(back.die().num_rows, pl.die().num_rows);
  net.for_each_gate([&](GateId g) {
    ASSERT_EQ(back.is_placed(g), pl.is_placed(g)) << net.name(g);
    if (pl.is_placed(g)) {
      EXPECT_NEAR(back.at(g).x, pl.at(g).x, 1e-9);
      EXPECT_NEAR(back.at(g).y, pl.at(g).y, 1e-9);
    }
  });
}

TEST(PlacementIo, UnknownGateRejected) {
  const Network net = random_mapped_network(83);
  std::stringstream ss("cell bogus_gate_name 1.0 2.0\n");
  EXPECT_THROW((void)read_placement(net, ss), InputError);
}

}  // namespace
}  // namespace rapids
