// Simulator, truth tables, equivalence checking.
#include <gtest/gtest.h>

#include "netlist/builder.hpp"
#include "test_helpers.hpp"
#include "verify/equivalence.hpp"
#include "verify/simulator.hpp"
#include "verify/truth_table.hpp"

namespace rapids {
namespace {

TEST(Simulator, EvaluatesSmallNetwork) {
  NetworkBuilder b;
  const GateId x = b.input("x"), y = b.input("y");
  const GateId g = b.and_({x, y});
  const GateId po = b.output("f", g);
  const Network net = b.take();

  Simulator sim(net);
  sim.run({0b1100, 0b1010});
  EXPECT_EQ(sim.value(g) & 0xF, 0b1000u);
  EXPECT_EQ(sim.value(po) & 0xF, 0b1000u);
}

TEST(Simulator, ConstantsAndInverters) {
  NetworkBuilder b;
  const GateId x = b.input("x");
  const GateId g = b.xor_({x, b.const1()});
  b.output("f", g);
  const Network net = b.take();
  Simulator sim(net);
  sim.run({0b01});
  EXPECT_EQ(sim.value(g) & 0b11, 0b10u);
}

TEST(Simulator, ExhaustiveBlockPatterns) {
  // With <=6 inputs, one block enumerates all assignments bitwise.
  NetworkBuilder b;
  const GateId x0 = b.input("x0"), x1 = b.input("x1");
  const GateId g = b.or_({x0, x1});
  b.output("f", g);
  const Network net = b.take();
  Simulator sim(net);
  sim.run_exhaustive_block(0);
  // Patterns 0..3 use bits 0..3: OR truth table 0,1,1,1 LSB-first.
  EXPECT_EQ(sim.value(g) & 0xF, 0b1110u);
}

TEST(Simulator, SignatureStableAndSensitive) {
  const Network a = rapids::testing::random_mapped_network(31);
  EXPECT_EQ(output_signature(a, 99), output_signature(a, 99));
  const Network c = rapids::testing::random_mapped_network(32);
  EXPECT_NE(output_signature(a, 99), output_signature(c, 99));
}

TEST(Simulator, AgreesWithTruthTableOnAllSmallNetworks) {
  // Property: on every generated <= 6-PI network, the bit-parallel
  // simulator and the cofactor-based truth-table evaluator agree on EVERY
  // primary output at EVERY assignment (both claim exactness; any
  // disagreement means one oracle is broken).
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const int pis = 2 + static_cast<int>(seed % 5);  // 2..6
    const Network net =
        rapids::testing::random_mapped_network(seed * 31 + 7, pis, 25, 4);
    const std::size_t n = net.primary_inputs().size();
    ASSERT_LE(n, 6u);
    Simulator sim(net);
    sim.run_exhaustive_block(0);
    for (const GateId po : net.primary_outputs()) {
      const TruthTable6 tt = truth_table_of(net, net.po_driver(po));
      for (std::uint64_t m = 0; m < (1ULL << n); ++m) {
        ASSERT_EQ((sim.value(po) >> m) & 1ULL, tt.value_at(m) ? 1ULL : 0ULL)
            << "seed " << seed << " output " << net.name(po) << " assignment " << m;
      }
    }
  }
}

TEST(Simulator, StructuralEditAfterConstructionIsCaught) {
  // Regression for the stale-snapshot footgun: a Simulator captures the
  // topological order at construction; running it after a structural edit
  // must assert instead of silently evaluating in a stale order.
  NetworkBuilder b;
  const GateId x = b.input("x"), y = b.input("y");
  const GateId g = b.and_({x, y});
  b.output("f", g);
  Network net = b.take();

  Simulator sim(net);
  sim.run({0b01, 0b11});  // fine: no edits yet

  const GateId inv = net.add_gate(GateType::Inv);
  net.add_fanin(inv, x);
  net.set_fanin(Pin{g, 1}, inv);
  EXPECT_THROW(sim.run({0b01, 0b11}), InternalError);

  // A fresh simulator sees the edited network correctly: g is now
  // AND(x, INV(x)) == constant 0.
  Simulator fresh(net);
  fresh.run({0b01, 0b11});
  EXPECT_EQ(fresh.value(g) & 0b11, 0b00u);
}

TEST(Simulator, NonStructuralEditsDoNotTripTheEpoch) {
  // set_type / set_cell keep the topology; the captured order stays valid
  // and the simulator reads types live, so these must NOT assert.
  NetworkBuilder b;
  const GateId x = b.input("x"), y = b.input("y");
  const GateId g = b.and_({x, y});
  b.output("f", g);
  Network net = b.take();
  Simulator sim(net);
  net.set_type(g, GateType::Or);
  sim.run({0b0011, 0b0101});
  EXPECT_EQ(sim.value(g) & 0xF, 0b0111u);
}

TEST(TruthTable, VariableAndConstant) {
  const TruthTable6 x0 = TruthTable6::variable(2, 0);
  EXPECT_EQ(x0.to_string(), "0101");
  const TruthTable6 one = TruthTable6::constant(2, true);
  EXPECT_EQ(one.to_string(), "1111");
}

TEST(TruthTable, CofactorsOfAnd) {
  // f = x0 & x1 over 2 vars (bit m set iff both variable bits of m are 1).
  const TruthTable6 f(2, 0b1000);
  // f|x0=1 == x1, whose projection string (assignments 00,01,10,11) is 0011.
  EXPECT_EQ(f.cofactor(0, true).to_string(), "0011");
  EXPECT_EQ(f.cofactor(0, true), TruthTable6::variable(2, 1));
  EXPECT_EQ(f.cofactor(0, false).to_string(), "0000");  // f|x0=0 == 0
}

TEST(TruthTable, SwapVars) {
  // f = x0 & !x1 -> swap -> x1 & !x0.
  const TruthTable6 f(2, 0b0010);
  EXPECT_EQ(f.swap_vars(0, 1).bits(), 0b0100u);
}

TEST(TruthTable, NesEsOnKnownFunctions) {
  // AND: NES yes, ES no.
  const TruthTable6 andf(2, 0b1000);
  EXPECT_TRUE(andf.nes(0, 1));
  EXPECT_FALSE(andf.es(0, 1));
  // x & !y: NES no, ES yes.
  const TruthTable6 angy(2, 0b0010);
  EXPECT_FALSE(angy.nes(0, 1));
  EXPECT_TRUE(angy.es(0, 1));
  // XOR: both.
  const TruthTable6 xorf(2, 0b0110);
  EXPECT_TRUE(xorf.nes(0, 1));
  EXPECT_TRUE(xorf.es(0, 1));
}

TEST(TruthTable, DependsOn) {
  const TruthTable6 f(3, 0b10101010);  // f = x0 over 3 vars
  EXPECT_FALSE(f.depends_on(1));
  EXPECT_FALSE(f.depends_on(2));
  // Note: 0b10101010 has bit m set iff m odd -> f == x0 indeed.
  EXPECT_TRUE(f.depends_on(0));
}

TEST(TruthTable, OfNetworkMatchesSimulation) {
  NetworkBuilder b;
  const GateId x0 = b.input("x0"), x1 = b.input("x1"), x2 = b.input("x2");
  const GateId g = b.or_({b.and_({x0, x1}), x2});
  b.output("f", g);
  const Network net = b.take();
  const TruthTable6 tt = truth_table_of(net, g);
  for (std::uint64_t m = 0; m < 8; ++m) {
    const bool expect = (((m >> 0) & 1) && ((m >> 1) & 1)) || ((m >> 2) & 1);
    EXPECT_EQ(tt.value_at(m), expect) << "assignment " << m;
  }
}

TEST(Equivalence, IdentityIsEquivalent) {
  const Network net = rapids::testing::random_mapped_network(41);
  const EquivalenceResult r = check_equivalence(net, net.clone());
  EXPECT_TRUE(r.equivalent);
  EXPECT_TRUE(r.exhaustive);  // 12 inputs <= default exhaustive limit
}

TEST(Equivalence, DetectsSingleGateChange) {
  Network a = rapids::testing::random_mapped_network(43);
  Network b = a.clone();
  // Flip one gate type to its complement: function must differ somewhere.
  for (const GateId g : b.gates()) {
    if (is_logic(b.type(g)) && b.fanout_count(g) > 0 &&
        is_multi_input(b.type(g))) {
      b.set_type(g, inverted_type(b.type(g)));
      break;
    }
  }
  EXPECT_FALSE(check_equivalence(a, b).equivalent);
}

TEST(Equivalence, MatchesByNameNotOrder) {
  NetworkBuilder b1;
  const GateId x = b1.input("x"), y = b1.input("y");
  b1.output("f", b1.and_({x, y}));
  const Network n1 = b1.take();

  NetworkBuilder b2;  // inputs declared in the other order
  const GateId y2 = b2.input("y"), x2 = b2.input("x");
  b2.output("f", b2.and_({x2, y2}));
  const Network n2 = b2.take();

  EXPECT_TRUE(check_equivalence(n1, n2).equivalent);

  NetworkBuilder b3;  // actually different function
  const GateId y3 = b3.input("y"), x3 = b3.input("x");
  b3.output("f", b3.and_({b3.inv(x3), y3}));
  const Network n3 = b3.take();
  EXPECT_FALSE(check_equivalence(n1, n3).equivalent);
}

TEST(Equivalence, InterfaceMismatchThrows) {
  NetworkBuilder b1;
  b1.output("f", b1.inv(b1.input("x")));
  const Network n1 = b1.take();
  NetworkBuilder b2;
  b2.output("f", b2.inv(b2.input("zzz")));
  const Network n2 = b2.take();
  EXPECT_THROW((void)check_equivalence(n1, n2), InputError);
}

TEST(Equivalence, RandomModeOnWideInterface) {
  // 20 inputs exceeds the default exhaustive limit -> random sampling.
  NetworkBuilder b1;
  std::vector<GateId> xs;
  for (int i = 0; i < 20; ++i) xs.push_back(b1.input("x" + std::to_string(i)));
  b1.output("f", b1.tree(GateType::Xor, xs, 2));
  const Network n1 = b1.take();

  NetworkBuilder b2;
  std::vector<GateId> ys;
  for (int i = 0; i < 20; ++i) ys.push_back(b2.input("x" + std::to_string(i)));
  std::reverse(ys.begin(), ys.end());  // XOR is symmetric: still equivalent
  b2.output("f", b2.tree(GateType::Xor, ys, 2));
  const Network n2 = b2.take();

  const EquivalenceResult r = check_equivalence(n1, n2);
  EXPECT_TRUE(r.equivalent);
  EXPECT_FALSE(r.exhaustive);
  EXPECT_GT(r.patterns, 1000u);
}

}  // namespace
}  // namespace rapids
