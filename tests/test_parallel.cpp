// Parallel rewiring scheduler: conflict detector (overlapping vs disjoint
// cones, cross-supergate moves spanning shards), thread pool, RNG
// substreams, sharded stats, replica probe equivalence, and the headline
// guarantee — `threads N` produces bit-identical netlists to `threads 1`.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include "engine/rewire_engine.hpp"
#include "flow/flow.hpp"
#include "io/blif_writer.hpp"
#include "netlist/builder.hpp"
#include "parallel/conflict.hpp"
#include "parallel/probe_context.hpp"
#include "parallel/scheduler.hpp"
#include "place/placer.hpp"
#include "rewire/cross_sg.hpp"
#include "sym/gisg.hpp"
#include "sym/symmetry.hpp"
#include "test_helpers.hpp"
#include "timing/sta.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"
#include "verify/equivalence.hpp"

namespace rapids {
namespace {

using rapids::testing::lib035;

// --- thread pool -------------------------------------------------------------

TEST(ThreadPool, RunsEveryWorkerExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.workers(), 4);
  std::vector<std::atomic<int>> hits(4);
  for (auto& h : hits) h = 0;
  for (int round = 0; round < 3; ++round) {
    pool.run([&](int w) { ++hits[static_cast<std::size_t>(w)]; });
  }
  for (const auto& h : hits) EXPECT_EQ(h.load(), 3);
}

TEST(ThreadPool, SingleWorkerRunsInline) {
  ThreadPool pool(1);
  std::thread::id id;
  pool.run([&](int) { id = std::this_thread::get_id(); });
  EXPECT_EQ(id, std::this_thread::get_id());
}

TEST(ThreadPool, PropagatesWorkerExceptions) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.run([&](int w) {
                 if (w == 2) throw std::runtime_error("boom");
               }),
               std::runtime_error);
  // The pool survives a throwing round.
  std::atomic<int> ok{0};
  pool.run([&](int) { ++ok; });
  EXPECT_EQ(ok.load(), 3);
}

// --- rng substreams ----------------------------------------------------------

TEST(RngSubstream, DeterministicAndDecorrelated) {
  Rng a0 = Rng::substream(42, 0);
  Rng a0_again = Rng::substream(42, 0);
  EXPECT_EQ(a0.next_u64(), a0_again.next_u64());
  // Different stream indices, seeds, and the base generator all diverge.
  EXPECT_NE(Rng::substream(42, 0).next_u64(), Rng::substream(42, 1).next_u64());
  EXPECT_NE(Rng::substream(42, 0).next_u64(), Rng(42).next_u64());
  EXPECT_NE(Rng::substream(43, 0).next_u64(), Rng::substream(42, 0).next_u64());
}

// --- sharded stats -----------------------------------------------------------

TEST(ShardedStats, MergesLikeSingleAccumulator) {
  RunningStats serial;
  ShardedStats sharded(4);
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double() * 10.0 - 3.0;
    serial.add(x);
    sharded.shard(i % 4).add(x);
  }
  const RunningStats merged = sharded.merged();
  EXPECT_EQ(merged.count(), serial.count());
  EXPECT_NEAR(merged.mean(), serial.mean(), 1e-9);
  EXPECT_NEAR(merged.stddev(), serial.stddev(), 1e-9);
  EXPECT_DOUBLE_EQ(merged.min(), serial.min());
  EXPECT_DOUBLE_EQ(merged.max(), serial.max());
}

// --- conflict detector -------------------------------------------------------

/// Two disjoint 2-AND cones feeding separate outputs.
struct ConflictFixture {
  Network net;
  GateId a1, a2, b1, b2;  // and-gate layers: a2 consumes a1, b2 consumes b1

  ConflictFixture() {
    NetworkBuilder b;
    const GateId x0 = b.input("x0"), x1 = b.input("x1"), x2 = b.input("x2");
    const GateId y0 = b.input("y0"), y1 = b.input("y1"), y2 = b.input("y2");
    a1 = b.and_({x0, x1});
    a2 = b.and_({a1, x2});
    b1 = b.and_({y0, y1});
    b2 = b.and_({b1, y2});
    b.output("fa", a2);
    b.output("fb", b2);
    net = b.take();
  }
};

TEST(Conflict, DisjointConesDoNotOverlap) {
  ConflictFixture f;
  SwapCandidate sa;
  sa.pin_a = Pin{f.a1, 0};
  sa.pin_b = Pin{f.a1, 1};
  SwapCandidate sb;
  sb.pin_a = Pin{f.b1, 0};
  sb.pin_b = Pin{f.b1, 1};
  const ConflictSignature siga =
      move_signature(f.net, nullptr, EngineMove::swap(sa), 2);
  const ConflictSignature sigb =
      move_signature(f.net, nullptr, EngineMove::swap(sb), 2);
  EXPECT_FALSE(siga.overlaps(sigb));
  EXPECT_TRUE(siga.overlaps(siga));
}

TEST(Conflict, FanoutConeMakesDownstreamMovesOverlap) {
  ConflictFixture f;
  SwapCandidate shallow;  // rewires a1's pins; its fanout cone reaches a2
  shallow.pin_a = Pin{f.a1, 0};
  shallow.pin_b = Pin{f.a1, 1};
  const EngineMove resize_downstream = EngineMove::resize(f.a2, 0);
  const ConflictSignature s1 =
      move_signature(f.net, nullptr, EngineMove::swap(shallow), 2);
  const ConflictSignature s2 = move_signature(f.net, nullptr, resize_downstream, 2);
  // a2 is in the swap's fanout cone AND the resize touches a1 through its
  // fanin drivers (a1 drives one of a2's pins — same net).
  EXPECT_TRUE(s1.overlaps(s2));
  const ConflictSignature s1d0 =
      move_signature(f.net, nullptr, EngineMove::swap(shallow), 0);
  const ConflictSignature s2d0 = move_signature(f.net, nullptr, resize_downstream, 0);
  EXPECT_TRUE(s1d0.overlaps(s2d0));
}

TEST(Conflict, AssignShardsKeepsOverlappingGroupsTogether) {
  // Signatures: g0 {1,2}, g1 {2,3} (overlaps g0), g2 {10,11} (disjoint),
  // g3 {11} (overlaps g2), g4 {20} (alone).
  std::vector<ConflictSignature> sigs(5);
  sigs[0].touched = {1, 2};
  sigs[1].touched = {2, 3};
  sigs[2].touched = {10, 11};
  sigs[3].touched = {11};
  sigs[4].touched = {20};
  const std::vector<int> shard = assign_shards(sigs, 2);
  EXPECT_EQ(shard[0], shard[1]);
  EXPECT_EQ(shard[2], shard[3]);
  // Three components over two shards: at least two distinct shards used.
  EXPECT_NE(shard[0], shard[2]);
  for (const int s : shard) {
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 2);
  }
  // Deterministic.
  EXPECT_EQ(shard, assign_shards(sigs, 2));
  // One shard degenerates to all-zero.
  for (const int s : assign_shards(sigs, 1)) EXPECT_EQ(s, 0);
}

TEST(Conflict, OversizedComponentIsSplitForLoadBalance) {
  // 40 groups chained into one component through a shared gate: keeping it
  // atomic would put the entire round on one worker. It must be split
  // evenly instead (replica isolation makes that safe).
  std::vector<ConflictSignature> sigs(40);
  for (int g = 0; g < 40; ++g) {
    sigs[static_cast<std::size_t>(g)].touched = {0u, static_cast<GateId>(g + 1)};
  }
  const std::vector<int> shard = assign_shards(sigs, 4);
  std::vector<int> count(4, 0);
  for (const int s : shard) ++count[static_cast<std::size_t>(s)];
  for (const int c : count) EXPECT_EQ(c, 10);
  EXPECT_EQ(shard, assign_shards(sigs, 4));
}

TEST(Conflict, CrossSgSignatureSpansBothSupergates) {
  // Enclosing XOR makes the outputs of SG1=AND(a,b,c) and SG2=OR(d,e,g)
  // symmetric — the Fig. 3 fixture with a guaranteed cross-sg candidate.
  NetworkBuilder b;
  const GateId a = b.input("a"), bb = b.input("b"), c = b.input("c");
  const GateId d = b.input("d"), e = b.input("e"), g = b.input("g");
  const GateId sg1 = b.and_({a, bb, c});
  const GateId sg2 = b.or_({d, e, g});
  b.output("f", b.xor_({sg1, sg2}));
  Network net = b.take();

  const GisgPartition part = extract_gisg(net);
  const std::vector<CrossSgCandidate> cands = find_cross_sg_candidates(part, net);
  ASSERT_FALSE(cands.empty());
  const ConflictSignature sig =
      move_signature(net, &part, EngineMove::cross_sg(cands[0]), 0);

  // The signature must cover gates from BOTH spanned supergates, so
  // conflict sharding can never split a cross-sg move's two sides across
  // shards: any group touching either side lands in the same component.
  const SuperGate& sga = part.sgs[static_cast<std::size_t>(cands[0].sg_a)];
  const SuperGate& sgb = part.sgs[static_cast<std::size_t>(cands[0].sg_b)];
  auto contains = [&sig](GateId gate) {
    return std::binary_search(sig.touched.begin(), sig.touched.end(), gate);
  };
  EXPECT_TRUE(contains(sga.root));
  EXPECT_TRUE(contains(sgb.root));

  ConflictSignature side_a, side_b;
  side_a.touched = {sga.root};
  side_b.touched = {sgb.root};
  std::vector<ConflictSignature> sigs = {side_a, side_b, sig};
  const std::vector<int> shard = assign_shards(sigs, 8);
  EXPECT_EQ(shard[0], shard[2]);
  EXPECT_EQ(shard[1], shard[2]);
}

// --- replica probing ---------------------------------------------------------

TEST(ProbeContext, ReplicaProbesMatchLiveEngine) {
  Network net = testing::mapped(testing::random_mapped_network(99));
  PlacerOptions popt;
  popt.effort = 1.0;
  popt.num_temps = 4;
  Placement pl = place(net, lib035(), popt);
  Sta sta(net, lib035(), pl);
  RewireEngine engine(net, pl, lib035(), sta);

  const std::vector<SwapCandidate> swaps =
      enumerate_all_swaps(engine.partition(), net);
  ASSERT_FALSE(swaps.empty());

  ProbeContext ctx(lib035(), 1, 0);
  ctx.sync(engine);
  ASSERT_TRUE(ctx.synced_to(engine.epoch()));

  // State adoption is byte-exact: every arrival matches bit for bit.
  const auto live_arr = sta.arrivals();
  const auto replica_arr = ctx.engine().sta().arrivals();
  ASSERT_EQ(live_arr.size(), replica_arr.size());
  for (std::size_t i = 0; i < live_arr.size(); ++i) {
    EXPECT_EQ(live_arr[i].rise, replica_arr[i].rise);
    EXPECT_EQ(live_arr[i].fall, replica_arr[i].fall);
  }

  for (const SwapCandidate& c : swaps) {
    const EngineMove m = EngineMove::swap(c);
    const EngineObjective live = engine.probe(m);
    const EngineObjective replica = ctx.engine().probe_with(ctx.scratch(), m);
    // Bit-identical, not just close: replicas adopt the live timing state
    // byte-for-byte and probes are pure functions of state.
    EXPECT_EQ(live.critical, replica.critical);
    EXPECT_EQ(live.sum_po, replica.sum_po);
  }
  EXPECT_GT(ctx.take_stats().probes, 0u);
  EXPECT_EQ(ctx.take_stats().probes, 0u);
}

// --- scheduler ---------------------------------------------------------------

std::string blif_of(const Network& net) {
  std::ostringstream os;
  write_blif(net, os, "determinism");
  return os.str();
}

TEST(SchedulerDeterminism, ThreadCountsProduceIdenticalNetlists) {
  // The headline guarantee on real circuits, end to end through the flow:
  // identical BLIF output and final delay for 1 vs 8 workers.
  FlowOptions base;
  base.placer.effort = 1.0;
  base.placer.num_temps = 4;
  base.opt.max_iterations = 2;
  for (const char* name : {"alu2", "c432", "c499"}) {
    const PreparedCircuit prepared = prepare_benchmark(name, lib035(), base);
    FlowOptions serial = base;
    serial.opt.threads = 1;
    FlowOptions parallel = base;
    parallel.opt.threads = 8;
    const ModeRun one = run_mode(prepared, lib035(), OptMode::GsgPlusGS, serial);
    const ModeRun eight = run_mode(prepared, lib035(), OptMode::GsgPlusGS, parallel);
    EXPECT_TRUE(one.verified) << name;
    EXPECT_TRUE(eight.verified) << name;
    EXPECT_EQ(one.result.final_delay, eight.result.final_delay) << name;
    EXPECT_EQ(one.result.swaps_committed, eight.result.swaps_committed) << name;
    EXPECT_EQ(one.result.resizes_committed, eight.result.resizes_committed) << name;
    EXPECT_EQ(blif_of(one.optimized), blif_of(eight.optimized)) << name;
  }
}

TEST(SchedulerDeterminism, RepeatedRunsAreIdentical) {
  FlowOptions base;
  base.placer.effort = 1.0;
  base.placer.num_temps = 4;
  const PreparedCircuit prepared = prepare_benchmark("alu2", lib035(), base);
  FlowOptions opt = base;
  opt.opt.threads = 3;
  opt.opt.max_iterations = 2;
  const ModeRun r1 = run_mode(prepared, lib035(), OptMode::Gsg, opt);
  const ModeRun r2 = run_mode(prepared, lib035(), OptMode::Gsg, opt);
  EXPECT_EQ(blif_of(r1.optimized), blif_of(r2.optimized));
  EXPECT_EQ(r1.result.final_delay, r2.result.final_delay);
}

TEST(Scheduler, RoundCommitsImproveOrHold) {
  Network net = testing::mapped(testing::random_mapped_network(123));
  PlacerOptions popt;
  popt.effort = 1.0;
  popt.num_temps = 4;
  Placement pl = place(net, lib035(), popt);
  Sta sta(net, lib035(), pl);
  RewireEngine engine(net, pl, lib035(), sta);
  SchedulerOptions sopt;
  sopt.threads = 4;
  ParallelRewireScheduler sched(engine, sopt);

  std::vector<ProbeGroup> groups;
  const GisgPartition& part = engine.partition();
  for (std::size_t s = 0; s < part.sgs.size(); ++s) {
    if (part.sgs[s].is_trivial()) continue;
    ProbeGroup g;
    for (const SwapCandidate& c :
         enumerate_swaps(part, static_cast<int>(s), net)) {
      g.moves.push_back(EngineMove::swap(c));
    }
    if (!g.moves.empty()) groups.push_back(std::move(g));
  }

  const double before = sta.critical_delay();
  const int committed = sched.run_round(groups, ProbePolicy::MinCritical, 1e-6);
  EXPECT_LE(sta.critical_delay(), before + 1e-9);
  EXPECT_EQ(sched.stats().committed, static_cast<std::uint64_t>(committed));
  EXPECT_GE(sched.stats().worker_probes, sched.stats().accepted);
  EXPECT_GT(sched.stats().rounds, 0u);
}

}  // namespace
}  // namespace rapids
