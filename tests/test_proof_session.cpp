// Persistent incremental proof sessions (sat/proof_session.hpp): window
// protocol, cross-move cache reuse and invalidation (by affected-cone
// epoch and by recycled gate id), stats delta accounting, and the
// engine-level differential against the per-move WindowChecker — session
// mode must prove the SAME move set, move-for-move.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "engine/rewire_engine.hpp"
#include "flow/flow.hpp"
#include "gen/suite.hpp"
#include "io/blif_writer.hpp"
#include "netlist/builder.hpp"
#include "place/placer.hpp"
#include "sat/proof_session.hpp"
#include "sym/symmetry.hpp"
#include "test_helpers.hpp"
#include "verify/equivalence.hpp"

namespace rapids {
namespace {

using sat::ProofSession;

std::string blif_of(const Network& net) {
  std::ostringstream os;
  write_blif(net, os, "t");
  return os.str();
}

// --- window protocol --------------------------------------------------------

TEST(ProofSession, ProvesNoOpAndRefutesRealEdit) {
  NetworkBuilder b;
  const GateId a = b.input("a"), x = b.input("b"), c = b.input("c");
  const GateId g = b.and_({a, x, c});
  b.output("f", g);
  Network net = b.take();

  ProofSession session;
  const GateId changed[] = {g};
  session.begin(net, {&g, 1}, changed);
  net.set_fanin(Pin{g, 0}, x);
  net.set_fanin(Pin{g, 1}, a);  // symmetric swap: function preserved
  EXPECT_TRUE(session.check(net, {}));
  session.keep();

  session.begin(net, {&g, 1}, changed);
  net.set_fanin(Pin{g, 2}, a);  // AND(x,a,a): drops the c input
  std::string diag;
  EXPECT_FALSE(session.check(net, {}, &diag));
  EXPECT_NE(diag.find("function changed"), std::string::npos);
  net.set_fanin(Pin{g, 2}, c);  // roll the edit back
  session.abandon();

  // The session survives a refuted window: the next legitimate move still
  // proves on the same solver.
  session.begin(net, {&g, 1}, changed);
  net.set_fanin(Pin{g, 0}, a);
  net.set_fanin(Pin{g, 1}, x);
  EXPECT_TRUE(session.check(net, {}));
  session.keep();
  EXPECT_EQ(session.stats().moves_checked, 3u);
  EXPECT_EQ(session.stats().windows_kept, 2u);
  EXPECT_EQ(session.stats().windows_abandoned, 1u);
}

TEST(ProofSession, DoubleBeginAbandonsTheStaleWindow) {
  NetworkBuilder b;
  const GateId a = b.input("a"), x = b.input("b"), c = b.input("c");
  const GateId g = b.and_({a, x, c});
  const GateId h = b.or_({a, c});
  b.output("f", g);
  b.output("f2", h);
  Network net = b.take();

  ProofSession session;
  const GateId changed_h[] = {h};
  const GateId changed_g[] = {g};
  session.begin(net, {&h, 1}, changed_h);  // probe abandoned mid-flight
  session.begin(net, {&g, 1}, changed_g);  // must reset cleanly
  EXPECT_EQ(session.stats().windows_abandoned, 1u);
  net.set_fanin(Pin{g, 0}, x);
  net.set_fanin(Pin{g, 1}, a);
  EXPECT_TRUE(session.check(net, {}));
  session.keep();
  // Only the checked window counts as a move.
  EXPECT_EQ(session.stats().moves_checked, 1u);
}

TEST(ProofSession, DetectsUndominatedEdit) {
  NetworkBuilder b;
  const GateId a = b.input("a"), c = b.input("b");
  const GateId g = b.and_({a, c});
  const GateId h = b.or_({a, c});
  b.output("f", g);
  b.output("f2", h);
  Network net = b.take();

  ProofSession session;
  const GateId changed[] = {g};
  session.begin(net, {&h, 1}, changed);  // wrong root: h does not dominate g
  net.set_fanin(Pin{g, 0}, c);
  std::string diag;
  EXPECT_FALSE(session.check(net, {}, &diag));
  EXPECT_NE(diag.find("without passing"), std::string::npos);
  net.set_fanin(Pin{g, 0}, a);
  session.abandon();
}

// --- cross-move amortization ------------------------------------------------

TEST(ProofSession, WarmCacheAmortizesRepeatedWindows) {
  // Re-proving the same window must reuse the cached frontier: after the
  // first move, per-move encoding work drops and cache hits appear.
  NetworkBuilder b;
  std::vector<GateId> ins;
  for (int i = 0; i < 6; ++i) ins.push_back(b.input("i" + std::to_string(i)));
  const GateId l = b.and_({ins[0], ins[1], ins[2]});
  const GateId r = b.and_({ins[3], ins[4], ins[5]});
  const GateId g = b.and_({l, r});
  b.output("f", g);
  Network net = b.take();

  ProofSession session;
  const GateId changed[] = {g};
  session.begin(net, {&g, 1}, changed);
  net.set_fanin(Pin{g, 0}, r);
  net.set_fanin(Pin{g, 1}, l);
  ASSERT_TRUE(session.check(net, {}));
  session.keep();
  const auto first = session.stats();

  session.begin(net, {&g, 1}, changed);
  net.set_fanin(Pin{g, 0}, l);
  net.set_fanin(Pin{g, 1}, r);
  ASSERT_TRUE(session.check(net, {}));
  session.keep();
  const auto second = session.stats();

  // Second window re-derives only the root (hash-cons hits); the cut
  // frontier (l, r) is served from the cache.
  EXPECT_LT(second.gates_encoded - first.gates_encoded, first.gates_encoded);
  EXPECT_GT(second.cache_hits, first.cache_hits);
}

TEST(ProofSession, ConflictStatsAreDeltaAccounted) {
  // The session's conflict counter must equal the persistent solver's
  // cumulative total after any number of moves — adding the cumulative
  // counter per move (the throwaway-checker idiom) would overshoot.
  NetworkBuilder b;
  const GateId a = b.input("a"), x = b.input("b"), c = b.input("c"),
               d = b.input("d");
  // Nested structure so a pin swap across subtrees needs real SAT work:
  // AND(AND(a,x), AND(c,d)) vs AND(AND(a,c), AND(x,d)).
  const GateId l = b.and_({a, x});
  const GateId r = b.and_({c, d});
  const GateId g = b.and_({l, r});
  b.output("f", g);
  Network net = b.take();

  ProofSession session;
  for (int round = 0; round < 3; ++round) {
    const GateId changed[] = {l, r};
    session.begin(net, {&g, 1}, changed);
    // Exchange x and c between the subtrees (AND is fully symmetric over
    // its flattened support, but the nested encoding needs the solver).
    const GateId old_l1 = net.fanin(l, 1), old_r0 = net.fanin(r, 0);
    net.set_fanin(Pin{l, 1}, old_r0);
    net.set_fanin(Pin{r, 0}, old_l1);
    ASSERT_TRUE(session.check(net, {}));
    session.keep();
  }
  EXPECT_EQ(session.stats().moves_checked, 3u);
  EXPECT_EQ(session.stats().conflicts, session.solver_stats().conflicts);
}

// --- fault injection: warm-cache invalidation -------------------------------

TEST(ProofSessionFaultInjection, WarmSessionRefutesMutants) {
  // A warm session whose cache already holds the pre-mutation cones must
  // still REFUTE seeded mutants — cache invalidation by affected-cone
  // epoch is what keeps the pre-side honest.
  NetworkBuilder b;
  const GateId x = b.input("x"), y = b.input("y"), z = b.input("z");
  const GateId g = b.and_({x, y});
  const GateId r = b.and_({g, z});
  b.output("f", r);
  Network net = b.take();

  ProofSession session;
  // Warm: a legitimate swap at g, kept — the cache now holds cones for g
  // and r's frontier.
  const GateId changed_g[] = {g};
  session.begin(net, {&g, 1}, changed_g);
  net.set_fanin(Pin{g, 0}, y);
  net.set_fanin(Pin{g, 1}, x);
  ASSERT_TRUE(session.check(net, {}));
  session.keep();

  // Mutant 1: pin fault (g's y-input rewired to x: AND(x,x) == x != x&y).
  session.begin(net, {&g, 1}, changed_g);
  net.set_fanin(Pin{g, 0}, x);
  EXPECT_FALSE(session.check(net, {}));
  net.set_fanin(Pin{g, 0}, y);
  session.abandon();

  // Mutant 2: type fault at g, observed at the downstream root r whose
  // cone the cache already holds.
  session.begin(net, {&r, 1}, changed_g);
  net.set_type(g, GateType::Nand);
  EXPECT_FALSE(session.check(net, {}));
  net.set_type(g, GateType::And);
  session.abandon();

  // Health check: a legitimate move still proves after the refutations.
  session.begin(net, {&g, 1}, changed_g);
  net.set_fanin(Pin{g, 0}, x);
  net.set_fanin(Pin{g, 1}, y);
  EXPECT_TRUE(session.check(net, {}));
  session.keep();
}

TEST(ProofSessionFaultInjection, RecycledGateIdsAreInvalidated) {
  // A created gate's id may alias a gate the session cached before it was
  // deleted; the stale entry must be displaced or a mutant hiding behind
  // the recycled id would inherit the dead gate's (possibly compatible)
  // encoding.
  NetworkBuilder b;
  const GateId x = b.input("x"), y = b.input("y"), z = b.input("z");
  const GateId g = b.and_({x, y});
  const GateId r = b.and_({g, z});
  b.output("f", r);
  Network net = b.take();
  net.set_id_recycling(true);

  ProofSession session;
  // Move 1 (kept): reroute r's z-pin through a double inversion — the
  // created inverters get cached cone entries.
  const GateId changed_r[] = {r};
  session.begin(net, {&r, 1}, changed_r);
  const GateId i1 = net.add_gate(GateType::Inv);
  net.add_fanin(i1, z);
  const GateId i2 = net.add_gate(GateType::Inv);
  net.add_fanin(i2, i1);
  net.set_fanin(Pin{r, 1}, i2);
  const GateId created1[] = {i1, i2};
  ASSERT_TRUE(session.check(net, created1));
  session.keep();

  // Move 2 (kept): undo the detour so the inverters go dangling.
  session.begin(net, {&r, 1}, changed_r);
  net.set_fanin(Pin{r, 1}, z);
  ASSERT_TRUE(session.check(net, {}));
  session.keep();

  // Delete the dangling chain: i2 first, then i1 — with recycling on, the
  // next add_gate pops i1's id again.
  net.delete_gate(i2);
  net.delete_gate(i1);

  // Move 3: a MUTANT that inverts g's x-input through a fresh inverter
  // whose id aliases the deleted i1. With a stale cache entry the post
  // walk could pick up the dead gate's cone; the created-gate displacement
  // must force a fresh encoding and refute the move.
  const GateId changed_g[] = {g};
  session.begin(net, {&g, 1}, changed_g);
  const GateId i3 = net.add_gate(GateType::Inv);
  ASSERT_EQ(i3, i1) << "test premise: the id must be recycled";
  net.add_fanin(i3, x);
  net.set_fanin(Pin{g, 0}, i3);  // g = AND(!x, y): function changed
  const GateId created3[] = {i3};
  EXPECT_FALSE(session.check(net, created3));
  EXPECT_GT(session.stats().recycled_ids_invalidated, 0u);
  net.set_fanin(Pin{g, 0}, x);
  net.delete_gate(i3);
  session.abandon();
}

// --- engine-level differential ----------------------------------------------

TEST(Paranoid, InconclusiveAndProvedStayDisjoint) {
  // With zero conflict budgets every SAT-needing proof becomes
  // inconclusive (window Unknown -> full-miter Unknown -> conservative
  // reject). moves_checked must partition exactly into proved verdicts and
  // inconclusive rejects, the rejects must be rolled back cleanly, and the
  // accounting must agree between prover modes.
  const CellLibrary& lib = rapids::testing::lib035();
  const Network src = make_benchmark("c432");
  const Network golden = rapids::testing::mapped(src);
  for (const bool session : {true, false}) {
    Network net = golden.clone();
    Placement pl = place(net, lib, PlacerOptions{});
    Sta sta(net, lib, pl);
    sta.run_full();
    RewireEngine engine(net, pl, lib, sta);
    ParanoidOptions popt;
    popt.session = session;
    popt.window_conflict_limit = 0;
    popt.miter_conflict_limit = 0;
    engine.set_paranoid(true, popt);

    // Commit the first candidate of each non-trivial supergate (fresh
    // extraction per commit, as the engine's epoch discipline demands).
    int commits = 0;
    for (int round = 0; round < 8; ++round) {
      const GisgPartition& part = engine.partition();
      EngineMove move;
      bool found = false;
      for (std::size_t s = 0; s < part.sgs.size() && !found; ++s) {
        if (part.sgs[s].is_trivial()) continue;
        const auto cands = enumerate_swaps(part, static_cast<int>(s), net);
        // Prefer cross-gate swaps: same-gate pin swaps re-normalize to the
        // identical encoding (proved structurally even at budget 0) and
        // would make the inconclusive assertion vacuous.
        for (std::size_t i = 0; i < cands.size() && !found; ++i) {
          const std::size_t j = (i + static_cast<std::size_t>(round)) % cands.size();
          if (cands[j].pin_a.gate != cands[j].pin_b.gate) {
            move = EngineMove::swap(cands[j]);
            found = true;
          }
        }
        if (!found && !cands.empty()) {
          move = EngineMove::swap(cands[static_cast<std::size_t>(round) %
                                        cands.size()]);
          found = true;
        }
      }
      if (!found) break;
      engine.commit(move);
      ++commits;
    }
    ASSERT_GT(commits, 0);

    const auto& verdicts = engine.paranoid_verdicts();
    ASSERT_EQ(verdicts.size(), engine.paranoid_moves_checked());
    std::uint64_t proved = 0, inconclusive = 0;
    for (const ProofVerdict v : verdicts) {
      if (v == ProofVerdict::Inconclusive) {
        ++inconclusive;
      } else {
        ++proved;
      }
    }
    EXPECT_EQ(inconclusive, engine.paranoid_inconclusive());
    EXPECT_EQ(proved + inconclusive, engine.paranoid_moves_checked());
    // With a zero budget c432's windows cannot all prove structurally.
    EXPECT_GT(inconclusive, 0u) << (session ? "session" : "per-move");

    // Rejected moves were rolled back: whatever was kept is equivalent.
    const EquivalenceResult eq = check_equivalence(golden, net);
    EXPECT_TRUE(eq.equivalent) << (session ? "session" : "per-move");
  }
}

// --- full-flow differential (slow tier) -------------------------------------

class ParanoidSessionFlowSlow : public ::testing::TestWithParam<const char*> {};

TEST_P(ParanoidSessionFlowSlow, SessionMatchesPerMoveSolverMoveForMove) {
  // Acceptance property: `flow --paranoid` in session mode proves the same
  // move set as per-move-solver mode — move-for-move identical verdicts,
  // identical netlists — while encoding fewer gates in total.
  const CellLibrary& lib = rapids::testing::lib035();
  FlowOptions options;
  options.opt.paranoid = true;
  const PreparedCircuit prepared = prepare_benchmark(GetParam(), lib, options);

  options.opt.sat_session = true;
  const ModeRun with_session = run_mode(prepared, lib, OptMode::GsgPlusGS, options);
  options.opt.sat_session = false;
  const ModeRun per_move = run_mode(prepared, lib, OptMode::GsgPlusGS, options);

  EXPECT_TRUE(with_session.verified);
  EXPECT_TRUE(per_move.verified);
  EXPECT_EQ(blif_of(with_session.optimized), blif_of(per_move.optimized));
  EXPECT_EQ(with_session.result.paranoid_verdicts, per_move.result.paranoid_verdicts);
  EXPECT_EQ(with_session.result.moves_proved, per_move.result.moves_proved);
  EXPECT_GT(with_session.result.moves_proved, 0u);
  // The headline: the session re-encodes less than windows-from-scratch.
  EXPECT_LT(with_session.result.proof_gates_encoded,
            per_move.result.proof_gates_encoded);
}

INSTANTIATE_TEST_SUITE_P(Table1, ParanoidSessionFlowSlow,
                         ::testing::Values("alu2", "c432", "c499"));

TEST(ParanoidSessionFlowSlow, ThreadsStayBitIdenticalInSessionMode) {
  // Session mode with per-worker sessions must keep the parallel
  // determinism contract: --threads N bit-identical to --threads 1.
  const CellLibrary& lib = rapids::testing::lib035();
  FlowOptions options;
  options.opt.paranoid = true;
  options.opt.sat_session = true;
  const PreparedCircuit prepared = prepare_benchmark("c499", lib, options);

  options.opt.threads = 1;
  const ModeRun serial = run_mode(prepared, lib, OptMode::GsgPlusGS, options);
  options.opt.threads = 3;
  const ModeRun parallel = run_mode(prepared, lib, OptMode::GsgPlusGS, options);

  EXPECT_TRUE(serial.verified);
  EXPECT_TRUE(parallel.verified);
  EXPECT_EQ(blif_of(serial.optimized), blif_of(parallel.optimized));
  EXPECT_EQ(serial.result.moves_proved, parallel.result.moves_proved);
  EXPECT_EQ(serial.result.paranoid_verdicts, parallel.result.paranoid_verdicts);
}

}  // namespace
}  // namespace rapids
