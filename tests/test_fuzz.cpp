// Differential fuzzing harness: shrinker behavior and end-to-end smoke.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "flow/flow.hpp"
#include "fuzz/fuzz.hpp"
#include "gen/random_circuit.hpp"
#include "io/blif_writer.hpp"
#include "netlist/validate.hpp"
#include "test_helpers.hpp"
#include "verify/simulator.hpp"

namespace rapids {
namespace {

TEST(RandomCircuit, DeterministicPerSeed) {
  const Network a = random_network(42);
  const Network b = random_network(42);
  EXPECT_EQ(a.num_gates(), b.num_gates());
  for (const GateId g : a.gates()) {
    ASSERT_FALSE(b.is_deleted(g));
    EXPECT_EQ(a.type(g), b.type(g));
  }
  EXPECT_EQ(output_signature(a, 5), output_signature(b, 5));
  const Network c = random_network(43);
  EXPECT_NE(output_signature(a, 5), output_signature(c, 5));
}

TEST(RandomCircuit, ProfilesStayInBounds) {
  for (std::uint64_t iter = 0; iter < 40; ++iter) {
    const RandomCircuitOptions opt = random_fuzz_profile(9, iter, 16, 140);
    EXPECT_GE(opt.num_inputs, 3);
    EXPECT_LE(opt.num_inputs, 16);
    EXPECT_GE(opt.num_gates, 8);
    EXPECT_LE(opt.num_gates, 140);
    const Network net = random_network(iter * 7 + 1, opt);
    EXPECT_TRUE(validate(net).empty());
    EXPECT_LE(net.primary_inputs().size(), 16u);
  }
}

TEST(Shrinker, MinimizesToThePredicateCore) {
  // Predicate: "fails" while the network still contains any XOR-family
  // gate. The shrinker must strip everything else and keep at least one.
  const Network src = rapids::testing::random_mapped_network(555, 10, 80, 6);
  const auto has_xor = [](const Network& n) {
    for (const GateId g : n.gates()) {
      if (base_type(n.type(g)) == GateType::Xor) return true;
    }
    return false;
  };
  ASSERT_TRUE(has_xor(src));
  const Network minimal = shrink_network(src, has_xor, 2000);
  EXPECT_TRUE(has_xor(minimal));
  EXPECT_TRUE(validate(minimal).empty());
  EXPECT_LT(minimal.num_gates(), src.num_gates() / 2);
  EXPECT_EQ(minimal.primary_outputs().size(), 1u);
}

TEST(Shrinker, ReturnsInputWhenNothingSmallerFails) {
  NetworkBuilder b;
  const GateId x = b.input("x"), y = b.input("y");
  b.output("f", b.and_({x, y}));
  const Network src = b.take();
  int calls = 0;
  const Network out = shrink_network(
      src,
      [&calls](const Network&) {
        ++calls;
        return false;
      },
      50);
  EXPECT_EQ(out.num_gates(), src.num_gates());
  EXPECT_GT(calls, 0);
}

TEST(FuzzSlow, ThreadDeterminismRegressionCircuits) {
  // Two circuits on which the fuzzer caught --threads 1 vs N divergence:
  // probe undo restores fanout SETS but not their order, so supergate
  // extraction — and with it the arbiter's (gain, group) canonical commit
  // order — used to depend on how many probes the live engine had run.
  // Fixed by canonicalizing fanout order before every extraction plus the
  // recycled-id reserve; these exact (seed, iteration, mode) draws pin it.
  struct Repro {
    std::uint64_t harness_seed;
    std::uint64_t iteration;
    OptMode mode;
  };
  const CellLibrary& lib = rapids::testing::lib035();
  for (const Repro re : {Repro{424242, 225, OptMode::GsgPlusGS},
                         Repro{424242, 379, OptMode::Gsg}}) {
    const RandomCircuitOptions prof =
        random_fuzz_profile(re.harness_seed, re.iteration, 24, 300);
    const Network src = random_network(
        Rng::substream(re.harness_seed, re.iteration * 2).next_u64(), prof);
    FlowOptions fopt;
    fopt.placer.seed = re.harness_seed + re.iteration;
    fopt.placer.effort = 1.0;
    fopt.opt.max_iterations = 2;
    fopt.verify = false;
    const PreparedCircuit prepared = prepare_circuit("repro", src, lib, fopt);
    fopt.opt.threads = 1;
    const ModeRun serial = run_mode(prepared, lib, re.mode, fopt);
    fopt.opt.threads = 3;
    const ModeRun parallel = run_mode(prepared, lib, re.mode, fopt);
    std::ostringstream b1, b3;
    write_blif(serial.optimized, b1, "r");
    write_blif(parallel.optimized, b3, "r");
    EXPECT_EQ(b1.str(), b3.str())
        << "seed " << re.harness_seed << " iter " << re.iteration;
  }
}

TEST(FuzzSlow, SmokeRunFindsNoBugs) {
  // The CI smoke contract: fixed seeds, bounded time, zero real bugs.
  FuzzOptions opt;
  opt.seed = 20260730;
  opt.iterations = 12;
  opt.threads = 3;
  opt.max_gates = 100;
  opt.repro_dir.clear();  // no disk writes from tests
  std::ostringstream log;
  const FuzzResult r = run_fuzz(opt, log);
  EXPECT_EQ(r.iterations, 12);
  EXPECT_TRUE(r.ok()) << log.str();
}

TEST(FuzzSlow, HealthyRunLeavesNoReproFiles) {
  // A clean run must not create the repro directory: reproducer files on
  // disk are the harness's failure signal and must never false-positive.
  const std::string dir = (std::filesystem::temp_directory_path() /
                           "rapids_fuzz_test_repros").string();
  std::filesystem::remove_all(dir);
  FuzzOptions opt;
  opt.seed = 99;
  opt.iterations = 3;
  opt.threads = 2;
  opt.repro_dir = dir;
  std::ostringstream log;
  const FuzzResult r = run_fuzz(opt, log);
  EXPECT_TRUE(r.ok()) << log.str();
  EXPECT_FALSE(std::filesystem::exists(dir));
}

}  // namespace
}  // namespace rapids
