// Placement study: how wire geometry drives the value of rewiring.
//
//   $ ./placement_study [circuit]   (default: c499)
//
// Places the same mapped netlist at three annealing efforts, prints
// wirelength + timing for each, then shows how much delay gsg recovers on
// each placement. Looser placements leave more on the table for rewiring —
// the post-placement optimization niche the paper targets.
#include <iostream>
#include <string>

#include "flow/flow.hpp"
#include "gen/suite.hpp"
#include "library/cell_library.hpp"
#include "mapping/mapper.hpp"
#include "place/placer.hpp"
#include "place/wirelength.hpp"
#include "timing/sta.hpp"

int main(int argc, char** argv) {
  using namespace rapids;
  const std::string circuit = argc > 1 ? argv[1] : "c499";
  const CellLibrary lib = builtin_library_035();
  const Network src = make_benchmark(circuit);
  const Network net = map_network(src, lib).mapped;
  std::cout << circuit << ": " << net.num_logic_gates() << " cells\n\n";
  std::cout << "effort | HPWL (mm)  star (mm) | delay (ns) | gsg delta\n";

  for (const double effort : {0.5, 2.0, 8.0}) {
    PlacerOptions popt;
    popt.effort = effort;
    popt.num_temps = effort < 1 ? 6 : 16;
    const Placement pl = place(net, lib, popt);

    Network work = net.clone();
    Placement work_pl = pl;
    Sta sta(work, lib, work_pl);
    const double before = sta.critical_delay();

    OptimizerOptions oopt;
    oopt.mode = OptMode::Gsg;
    oopt.max_iterations = 3;
    const OptimizerResult r = optimize(work, work_pl, lib, sta, oopt);

    std::printf("%6.1f | %9.3f %9.3f | %10.3f | %5.2f%% (%d swaps)\n", effort,
                total_hpwl(net, pl) / 1000.0, total_star_length(net, pl) / 1000.0,
                before, r.improvement_percent(), r.swaps_committed);
  }
  std::cout << "\n(HPWL/star in mm of routed length under the 2 pF/cm, 2.4 kOhm/cm\n"
               " parasitics of the paper's interconnect model.)\n";
  return 0;
}
