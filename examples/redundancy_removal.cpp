// Redundancy removal demo: inject redundancies into a PLA-style circuit,
// let supergate extraction find them for free (Fig. 1), remove them and
// prove equivalence.
//
//   $ ./redundancy_removal [dup_rate] [conflict_rate]   (defaults 0.3 0.1)
#include <cstdlib>
#include <iostream>

#include "gen/control.hpp"
#include "sym/gisg.hpp"
#include "sym/redundancy.hpp"
#include "verify/equivalence.hpp"

int main(int argc, char** argv) {
  using namespace rapids;
  PlaSpec spec;
  spec.num_inputs = 36;
  spec.num_outputs = 16;
  spec.num_products = 64;
  spec.min_literals = 4;
  spec.max_literals = 12;
  spec.dup_literal_rate = argc > 1 ? std::atof(argv[1]) : 0.3;
  spec.conflict_literal_rate = argc > 2 ? std::atof(argv[2]) : 0.1;
  spec.seed = 2024;

  Network net = make_pla(spec);
  const Network golden = net.clone();
  std::cout << "PLA circuit: " << net.num_logic_gates() << " gates, dup rate "
            << spec.dup_literal_rate << ", conflict rate "
            << spec.conflict_literal_rate << "\n";

  const GisgPartition part = extract_gisg(net);
  std::size_t conflicts = 0, branches = 0, xors = 0;
  for (const RedundancyRecord& rec : part.redundancies) {
    switch (rec.kind) {
      case RedundancyRecord::Kind::ConflictConstant:
        ++conflicts;
        break;
      case RedundancyRecord::Kind::RedundantBranch:
        ++branches;
        break;
      case RedundancyRecord::Kind::XorCancel:
        ++xors;
        break;
    }
  }
  std::cout << "extraction found " << part.redundancies.size()
            << " redundancies: " << conflicts << " case-1 (conflict -> constant), "
            << branches << " case-2 (untestable branch), " << xors
            << " xor-cancel\n";

  const RedundancyFixStats stats = apply_all_redundancies(net, part);
  std::cout << "applied: " << stats.constants_created << " constants, "
            << stats.branches_tied << " tied branches, " << stats.xor_pairs_cancelled
            << " xor pairs; cleanup removed " << stats.gates_removed << " gates\n";
  std::cout << "gates: " << golden.num_logic_gates() << " -> " << net.num_logic_gates()
            << "\n";

  const EquivalenceResult eq = check_equivalence(golden, net);
  std::cout << "equivalence after removal: " << (eq.equivalent ? "verified" : "FAILED")
            << " (" << eq.patterns << " patterns)\n";
  return eq.equivalent ? 0 : 1;
}
