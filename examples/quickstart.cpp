// Quickstart: build a small circuit, find its functional symmetries, apply
// a rewiring swap, and prove the function did not change.
//
//   $ ./quickstart
//
// Walks through the library's three core objects:
//   Network (the mapped netlist), GisgPartition (supergates + symmetries),
//   and the swap engine.
#include <iostream>

#include "library/cell_library.hpp"
#include "netlist/builder.hpp"
#include "place/placement.hpp"
#include "rewire/swap.hpp"
#include "sym/gisg.hpp"
#include "sym/symmetry.hpp"
#include "verify/equivalence.hpp"

int main() {
  using namespace rapids;

  // 1. Build f = NAND(a, NOR(b, c), d) — one AND-type supergate after
  //    implication analysis: f triggers on output 0, implying 1 on its pins
  //    and 0 on the NOR's pins.
  NetworkBuilder builder;
  const GateId a = builder.input("a");
  const GateId b = builder.input("b");
  const GateId c = builder.input("c");
  const GateId d = builder.input("d");
  const GateId nor_bc = builder.nor({b, c}, "nor_bc");
  const GateId root = builder.nand({a, nor_bc, d}, "root");
  builder.output("f", root);
  Network net = builder.take();
  const Network golden = net.clone();

  // 2. Extract generalized implication supergates (linear time).
  const GisgPartition part = extract_gisg(net);
  std::cout << "supergates: " << part.sgs.size() << "\n";
  for (const SuperGate& sg : part.sgs) {
    std::cout << "  root=" << net.name(sg.root) << " type=" << to_string(sg.type)
              << " covered=" << sg.covered.size() << " leaves=" << sg.num_leaves
              << "\n";
    for (const CoveredPin& pin : sg.pins) {
      if (!pin.leaf) continue;
      std::cout << "    leaf pin of " << net.name(pin.pin.gate) << "[" << pin.pin.index
                << "] driven by " << net.name(pin.driver)
                << " imp_value=" << pin.imp_value << "\n";
    }
  }

  // 3. Enumerate swappable pin pairs (Lemma 7: equal implied value -> plain
  //    exchange; different -> exchange through inverters).
  const auto swaps = enumerate_all_swaps(part, net);
  std::cout << "swappable pin pairs: " << swaps.size() << "\n";

  // 4. Apply the first inverting swap (a <-> b style) and verify.
  const CellLibrary lib = builtin_library_035();
  Placement pl(net.id_bound());
  net.for_each_gate([&](GateId g) { pl.set(g, Point{0, 0}); });
  for (const SwapCandidate& cand : swaps) {
    if (cand.polarity != SwapPolarity::Inverting) continue;
    std::cout << "applying inverting swap between pins of "
              << net.name(cand.pin_a.gate) << " and " << net.name(cand.pin_b.gate)
              << "\n";
    SwapEdit edit = apply_swap(net, pl, lib, cand);
    const EquivalenceResult eq = check_equivalence(golden, net);
    std::cout << "equivalent after swap: " << (eq.equivalent ? "yes" : "NO") << " ("
              << eq.patterns << " patterns, "
              << (eq.exhaustive ? "exhaustive" : "random") << ")\n";
    std::cout << "inverters inserted: " << edit.added_inverters.size() << "\n";
    break;
  }
  return 0;
}
