// Symmetry explorer: dump the supergate structure and symmetry classes of a
// benchmark circuit (or a BLIF file).
//
//   $ ./symmetry_explorer [circuit|path.blif]   (default: c432)
//
// Prints the supergate histogram, the largest supergates with their leaf
// pins and implied values, and per-type swap-pair counts — the raw material
// the paper's optimizer draws from.
#include <algorithm>
#include <iostream>
#include <string>

#include "gen/suite.hpp"
#include "io/blif_reader.hpp"
#include "library/cell_library.hpp"
#include "mapping/mapper.hpp"
#include "sym/gisg.hpp"
#include "sym/symmetry.hpp"

int main(int argc, char** argv) {
  using namespace rapids;
  const std::string arg = argc > 1 ? argv[1] : "c432";

  Network src;
  if (arg.size() > 5 && arg.substr(arg.size() - 5) == ".blif") {
    src = read_blif_file(arg);
    std::cout << "loaded " << arg << "\n";
  } else {
    src = make_benchmark(arg);
    std::cout << "generated benchmark " << arg << "\n";
  }
  const CellLibrary lib = builtin_library_035();
  const Network net = map_network(src, lib).mapped;
  std::cout << "mapped: " << net.num_logic_gates() << " cells\n\n";

  const GisgPartition part = extract_gisg(net);
  std::size_t trivial = 0, andor = 0, xor_sg = 0;
  for (const SuperGate& sg : part.sgs) {
    if (sg.is_trivial()) {
      ++trivial;
    } else if (sg.type == SgType::AndOr) {
      ++andor;
    } else if (sg.type == SgType::Xor) {
      ++xor_sg;
    }
  }
  std::cout << "supergates: " << part.sgs.size() << " (" << andor
            << " AND/OR, " << xor_sg << " XOR, " << trivial << " trivial)\n";
  std::cout << "coverage by non-trivial supergates: "
            << 100.0 * part.nontrivial_coverage(net) << "%\n";
  std::cout << "largest supergate fanin (L): " << part.max_leaves() << "\n";
  std::cout << "redundancies found during extraction: " << part.redundancies.size()
            << "\n\n";

  // Show the three largest supergates in detail.
  std::vector<const SuperGate*> by_size;
  for (const SuperGate& sg : part.sgs) {
    if (!sg.is_trivial()) by_size.push_back(&sg);
  }
  std::sort(by_size.begin(), by_size.end(),
            [](const SuperGate* a, const SuperGate* b) {
              return a->num_leaves > b->num_leaves;
            });
  for (std::size_t i = 0; i < std::min<std::size_t>(3, by_size.size()); ++i) {
    const SuperGate& sg = *by_size[i];
    std::cout << "supergate #" << i << ": root " << net.name(sg.root) << " ("
              << to_string(sg.root_fn) << "), covers " << sg.covered.size()
              << " gates, " << sg.num_leaves << " leaves\n";
    const auto classes = leaf_symmetry_classes(sg);
    for (std::size_t k = 0; k < classes.size(); ++k) {
      std::cout << "  class " << k << " (" << classes[k].size()
                << " mutually exchangeable pins):";
      std::size_t shown = 0;
      for (const Pin& p : classes[k]) {
        std::cout << ' ' << net.name(net.driver_of(p));
        if (++shown == 8 && classes[k].size() > 8) {
          std::cout << " ... (+" << classes[k].size() - 8 << ")";
          break;
        }
      }
      std::cout << "\n";
    }
  }

  const auto swaps = enumerate_all_swaps(part, net);
  std::size_t noninv = 0;
  for (const SwapCandidate& c : swaps) {
    if (c.polarity == SwapPolarity::NonInverting) ++noninv;
  }
  std::cout << "\ntotal swappable pin pairs: " << swaps.size() << " (" << noninv
            << " non-inverting, " << swaps.size() - noninv << " inverting)\n";
  return 0;
}
