// The paper's headline scenario end to end: a placed design misses timing;
// RAPIDS recovers delay WITHOUT moving a single placed cell.
//
//   $ ./timing_closure_flow [circuit]   (default: alu4)
//
// Steps: generate -> map (0.35um library) -> place -> STA baseline ->
// gsg / GS / gsg+GS -> report delay, area, runtime, perturbation.
#include <iostream>
#include <string>

#include "flow/flow.hpp"
#include "library/cell_library.hpp"
#include "timing/sta.hpp"

int main(int argc, char** argv) {
  using namespace rapids;
  const std::string circuit = argc > 1 ? argv[1] : "alu4";
  const CellLibrary lib = builtin_library_035();

  FlowOptions options;
  options.placer.effort = 4.0;
  options.opt.max_iterations = 4;

  std::cout << "preparing " << circuit << " (synthesize, map, place, STA)...\n";
  const PreparedCircuit prepared = prepare_benchmark(circuit, lib, options);
  std::cout << "  cells: " << prepared.mapped.num_logic_gates()
            << "  die: " << prepared.placement.die().width << " x "
            << prepared.placement.die().height << " um"
            << "  initial critical delay: " << prepared.initial_delay << " ns\n\n";

  for (const OptMode mode : {OptMode::Gsg, OptMode::GateSizing, OptMode::GsgPlusGS}) {
    const ModeRun run = run_mode(prepared, lib, mode, options);
    const OptimizerResult& r = run.result;
    std::cout << to_string(mode) << ":\n";
    std::cout << "  delay " << r.initial_delay << " -> " << r.final_delay << " ns  ("
              << r.improvement_percent() << "% better)\n";
    std::cout << "  area  " << r.initial_area << " -> " << r.final_area << " um^2  ("
              << r.area_delta_percent() << "%)\n";
    std::cout << "  moves: " << r.swaps_committed << " swaps, " << r.resizes_committed
              << " resizes, +" << r.inverters_added << "/-" << r.inverters_removed
              << " inverters\n";
    std::cout << "  cpu: " << r.seconds << " s   equivalence: "
              << (run.verified ? "verified" : "FAILED") << "\n";
    if (mode == OptMode::Gsg) {
      std::cout << "  supergate coverage: " << 100.0 * r.coverage
                << "%  largest supergate: " << r.max_sg_inputs
                << " inputs  redundancies found: " << r.redundancies_found << "\n";
    }
    std::cout << "\n";
  }
  std::cout << "note: every originally placed cell kept its exact location in all\n"
               "three runs — the rewiring engine only reconnects wires (and, for\n"
               "inverting swaps, inserts/removes inverters).\n";
  return 0;
}
