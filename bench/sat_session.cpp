// Paranoid-prover gauge: persistent incremental proof session
// (sat/proof_session.hpp) versus one throwaway solver per move
// (sat/window.hpp), emitted as machine-readable JSON (BENCH_sat.json).
//
// Two measurements per circuit:
//
//   micro — proofs/sec on ONE fixed window, re-proved in a loop. The
//     per-move prover re-builds solver + Tseitin encoding every iteration;
//     the warm session reuses its cached cut frontier and only re-derives
//     the window (hash-cons hits), so the gap isolates the per-move setup
//     cost the session amortizes.
//
//   flow — the full `--paranoid` optimize run in both modes from one
//     prepared placement: committed-move proofs, total encoded gates,
//     conflicts, the session's cone-cache hits and learned-clause
//     retention/eviction breakdown (reduce_db rounds), and whether the two
//     modes proved the SAME move set move-for-move (they must — the test
//     suite asserts it; the bench just records it).
//
// Usage: sat_session [--out BENCH_sat.json] [--circuits a,b,c]
//                    [--min-time SECONDS]
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "flow/flow.hpp"
#include "gen/suite.hpp"
#include "library/cell_library.hpp"
#include "mapping/mapper.hpp"
#include "opt/optimizer.hpp"
#include "place/placer.hpp"
#include "rewire/swap.hpp"
#include "sat/proof_session.hpp"
#include "sat/window.hpp"
#include "sym/gisg.hpp"
#include "sym/symmetry.hpp"
#include "util/timer.hpp"

namespace {

using namespace rapids;

struct MicroPoint {
  double session_proofs_per_sec = 0.0;
  double per_move_proofs_per_sec = 0.0;
  std::uint64_t session_gates_encoded = 0;  // across the whole loop
  std::uint64_t per_move_window_gates = 0;
  std::size_t proofs = 0;
};

/// Re-prove one fixed pin-swap window until `min_time` elapses, through
/// both provers.
MicroPoint micro_bench(const Network& src, const CellLibrary& lib, double min_time) {
  MicroPoint pt;
  Network net = src.clone();
  Placement pl = place(net, lib, PlacerOptions{});
  const GisgPartition part = extract_gisg(net);

  // First swappable candidate of a non-trivial supergate.
  SwapCandidate cand;
  GateId root = kNullGate;
  for (std::size_t s = 0; s < part.sgs.size() && root == kNullGate; ++s) {
    if (part.sgs[s].is_trivial()) continue;
    const auto cands = enumerate_swaps(part, static_cast<int>(s), net);
    if (!cands.empty()) {
      cand = cands.front();
      root = part.sgs[s].root;
    }
  }
  if (root == kNullGate) return pt;
  const GateId changed[] = {cand.pin_a.gate, cand.pin_b.gate};

  net.set_id_recycling(true);
  SwapEdit edit;

  {
    sat::ProofSession session;
    Timer t;
    std::size_t proofs = 0;
    do {
      session.begin(net, {&root, 1}, changed);
      apply_swap_into(net, pl, lib, cand, edit);
      const bool ok = session.check(net, edit.added_inverters);
      undo_swap(net, pl, edit);
      session.abandon();
      if (!ok) {
        std::cerr << "micro: session failed a provable window\n";
        return pt;
      }
      ++proofs;
    } while (t.seconds() < min_time);
    pt.session_proofs_per_sec = static_cast<double>(proofs) / t.seconds();
    pt.session_gates_encoded = session.stats().gates_encoded;
    pt.proofs = proofs;
  }
  {
    sat::WindowChecker checker;
    Timer t;
    std::size_t proofs = 0;
    std::uint64_t gates = 0;
    do {
      checker.begin(net, {&root, 1}, changed);
      apply_swap_into(net, pl, lib, cand, edit);
      const bool ok = checker.check(net, edit.added_inverters);
      undo_swap(net, pl, edit);
      if (!ok) {
        std::cerr << "micro: per-move checker failed a provable window\n";
        return pt;
      }
      ++proofs;
    } while (t.seconds() < min_time);
    gates = checker.stats().window_gates;
    pt.per_move_proofs_per_sec = static_cast<double>(proofs) / t.seconds();
    pt.per_move_window_gates = gates;
  }
  return pt;
}

struct FlowPoint {
  std::uint64_t moves_proved = 0;
  std::uint64_t inconclusive = 0;
  std::uint64_t gates_encoded = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t learned_kept = 0;
  std::uint64_t learned_deleted = 0;
  std::uint64_t reduce_dbs = 0;
  std::uint64_t roots_structural = 0;
  std::uint64_t roots_by_sat = 0;
  double seconds = 0.0;
  std::vector<std::uint8_t> verdicts;
};

FlowPoint run_paranoid(const PreparedCircuit& prepared, const CellLibrary& lib,
                       bool session) {
  FlowOptions options;
  options.verify = false;
  options.opt.paranoid = true;
  options.opt.sat_session = session;
  const ModeRun run = run_mode(prepared, lib, OptMode::GsgPlusGS, options);
  FlowPoint pt;
  pt.moves_proved = run.result.moves_proved;
  pt.inconclusive = run.result.paranoid_inconclusive;
  pt.gates_encoded = run.result.proof_gates_encoded;
  pt.conflicts = run.result.proof_conflicts;
  pt.cache_hits = run.result.proof_cache_hits;
  pt.learned_kept = run.result.solver_learned_kept;
  pt.learned_deleted = run.result.solver_learned_deleted;
  pt.reduce_dbs = run.result.solver_reduce_dbs;
  pt.roots_structural = run.result.proof_roots_structural;
  pt.roots_by_sat = run.result.proof_roots_by_sat;
  pt.seconds = run.result.seconds;
  pt.verdicts = run.result.paranoid_verdicts;
  return pt;
}

void emit_flow_point(std::ostringstream& json, const char* key, const FlowPoint& p) {
  json << "     \"" << key << "\": {\"moves_proved\": " << p.moves_proved
       << ", \"inconclusive\": " << p.inconclusive
       << ", \"gates_encoded\": " << p.gates_encoded
       << ", \"conflicts\": " << p.conflicts << ", \"cache_hits\": " << p.cache_hits
       << ", \"roots_structural\": " << p.roots_structural
       << ", \"roots_by_sat\": " << p.roots_by_sat
       << ", \"learned_retained\": " << p.learned_kept
       << ", \"learned_evicted\": " << p.learned_deleted
       << ", \"reduce_db_rounds\": " << p.reduce_dbs << ", \"seconds\": " << p.seconds
       << "}";
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_sat.json";
  std::vector<std::string> circuits = {"alu2", "c432", "c499"};
  double min_time = 0.5;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value after " << a << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--out") {
      out_path = next();
    } else if (a == "--min-time") {
      min_time = std::stod(next());
    } else if (a == "--circuits") {
      circuits.clear();
      std::stringstream ss(next());
      std::string tok;
      while (std::getline(ss, tok, ',')) circuits.push_back(tok);
    } else {
      std::cerr << "usage: sat_session [--out FILE] [--circuits a,b,c]"
                   " [--min-time SECONDS]\n";
      return 2;
    }
  }

  const CellLibrary lib = builtin_library_035();
  std::ostringstream json;
  json << "{\n  \"bench\": \"sat_session\",\n"
       << "  \"modes\": [\"session\", \"per_move\"],\n  \"circuits\": [\n";
  bool first = true;
  for (const std::string& name : circuits) {
    std::cerr << "[sat_session] " << name << "\n";
    try {
      const Network src = map_network(make_benchmark(name), lib).mapped;
      const MicroPoint micro = micro_bench(src, lib, min_time);

      FlowOptions fopt;
      fopt.verify = false;
      const PreparedCircuit prepared = prepare_benchmark(name, lib, fopt);
      const FlowPoint with_session = run_paranoid(prepared, lib, /*session=*/true);
      const FlowPoint per_move = run_paranoid(prepared, lib, /*session=*/false);
      const bool verdicts_match = with_session.verdicts == per_move.verdicts;

      json << (first ? "" : ",\n") << "    {\"name\": \"" << name
           << "\", \"cells\": " << src.num_logic_gates() << ",\n"
           << "     \"micro\": {\"session_proofs_per_sec\": "
           << static_cast<long long>(micro.session_proofs_per_sec)
           << ", \"per_move_proofs_per_sec\": "
           << static_cast<long long>(micro.per_move_proofs_per_sec)
           << ", \"speedup\": "
           << (micro.per_move_proofs_per_sec > 0
                   ? micro.session_proofs_per_sec / micro.per_move_proofs_per_sec
                   : 0.0)
           << ", \"proofs\": " << micro.proofs << "},\n";
      emit_flow_point(json, "session", with_session);
      json << ",\n";
      emit_flow_point(json, "per_move", per_move);
      json << ",\n     \"verdicts_match_move_for_move\": "
           << (verdicts_match ? "true" : "false") << "}";
      first = false;
      if (!verdicts_match) {
        std::cerr << "[sat_session] WARNING: verdict mismatch on " << name << "\n";
      }
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
  }
  json << "\n  ]\n}\n";

  std::ofstream out(out_path);
  out << json.str();
  out.flush();
  std::cout << json.str();
  if (!out) {
    std::cerr << "error: failed to write " << out_path << "\n";
    return 1;
  }
  std::cerr << "wrote " << out_path << "\n";
  return 0;
}
