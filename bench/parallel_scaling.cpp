// Parallel scheduler scaling gauge: probe throughput and commit efficiency
// of the conflict-sharded worker pool versus the serial engine, per thread
// count, emitted as machine-readable JSON (BENCH_parallel.json) so the
// scaling trajectory is tracked across PRs.
//
// Measurements per circuit:
//   serial_probes_per_sec — the raw RewireEngine probe loop (no scheduler),
//     the same quantity bench/micro_engine gauges: the per-thread baseline.
//   per thread count N: probes_per_sec through the scheduler's
//     probe_round() (replica sync amortized across repeated rounds),
//     speedup vs serial, and commit_efficiency — committed / accepted from
//     one arbitrated MinCritical round on a fresh copy of the circuit (how
//     much of the parallel work survives deterministic arbitration).
//
// The report records hardware_threads: on a 1-core host every thread count
// time-slices one CPU, so probes_per_sec stays flat — the scaling claim
// must be read on a host with >= 8 hardware threads.
//
// Usage: parallel_scaling [--out BENCH_parallel.json] [--circuits a,b,c]
//                         [--threads 1,2,4,8] [--min-time SECONDS]
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "engine/rewire_engine.hpp"
#include "gen/suite.hpp"
#include "library/cell_library.hpp"
#include "mapping/mapper.hpp"
#include "opt/optimizer.hpp"
#include "parallel/scheduler.hpp"
#include "place/placer.hpp"
#include "rewire/swap.hpp"
#include "sizing/sizing.hpp"
#include "sym/gisg.hpp"
#include "sym/symmetry.hpp"
#include "timing/sta.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

using namespace rapids;

struct Prepared {
  Network net;
  Placement pl;
};

Prepared prepare(const std::string& name, const CellLibrary& lib) {
  Prepared p;
  p.net = map_network(make_benchmark(name), lib).mapped;
  PlacerOptions popt;
  popt.effort = 2.0;
  popt.num_temps = 8;
  p.pl = place(p.net, lib, popt);
  return p;
}

/// The optimizer's phase-A candidate stream: per-supergate swap groups plus
/// per-gate resize groups (gsg+GS eligibility).
std::vector<ProbeGroup> build_groups(RewireEngine& engine, const CellLibrary& lib) {
  std::vector<ProbeGroup> groups;
  Network& net = engine.net();
  const GisgPartition& part = engine.partition();
  std::vector<bool> covered(net.id_bound(), false);
  for (std::size_t s = 0; s < part.sgs.size(); ++s) {
    const SuperGate& sg = part.sgs[s];
    if (sg.is_trivial()) continue;
    for (const GateId g : sg.covered) covered[g] = true;
    ProbeGroup group;
    for (const SwapCandidate& c :
         enumerate_swaps(part, static_cast<int>(s), net)) {
      group.moves.push_back(EngineMove::swap(c));
    }
    if (!group.moves.empty()) groups.push_back(std::move(group));
  }
  for (const GateId g : net.gates()) {
    if (!is_logic(net.type(g)) || net.cell(g) < 0 || covered[g]) continue;
    ProbeGroup group;
    for (const int cell : resize_candidates(net, lib, g)) {
      group.moves.push_back(EngineMove::resize(g, cell));
    }
    if (!group.moves.empty()) groups.push_back(std::move(group));
  }
  return groups;
}

struct ThreadPoint {
  int threads = 0;
  double probes_per_sec = 0.0;
  double speedup = 0.0;
  double commit_efficiency = 0.0;
  int committed = 0;
  // Per-round per-worker probe-count distribution (load balance of the
  // conflict sharding; from the scheduler's ShardedStats). `skew` is
  // max/mean — 1.0 is perfect balance, and the weight-based sharding is
  // asserted to keep it under kMaxLoadSkew (count-based sharding measured
  // 7x on c1908).
  double worker_probes_mean = 0.0;
  double worker_probes_min = 0.0;
  double worker_probes_max = 0.0;
  double worker_probes_skew = 0.0;
  // Pipelined speculation over a converging run_round loop: replica probes
  // launched behind arbitration and group results reused vs discarded.
  // committed_speculative re-runs the same loop with speculation on and
  // must equal committed_loop (the barrier run) — the bench-level
  // determinism assertion.
  std::uint64_t speculative_probes = 0;
  std::uint64_t speculation_hits = 0;
  std::uint64_t speculation_wasted = 0;
  int committed_loop = 0;
  int committed_speculative = 0;
};

// Upper bound on per-round worker probe skew (max/mean) the sharding must
// hold. Weight-balanced dealing keeps real circuits near 1; the bound
// leaves room for rounds whose largest atomic component is genuinely
// indivisible.
constexpr double kMaxLoadSkew = 3.0;

/// run_round until convergence (two consecutive zero-commit rounds),
/// regenerating the candidate stream each round like the optimizer does.
/// With `speculate` on, every round hints its own policy so the follow-up
/// round can harvest; the final zero-commit rounds are the guaranteed hits.
int converge_rounds(RewireEngine& engine, const CellLibrary& lib,
                    ParallelRewireScheduler& sched, int max_rounds) {
  const SpeculationHint hint{ProbePolicy::MinCritical, 1e-6};
  int total = 0;
  int dry = 0;
  for (int round = 0; round < max_rounds && dry < 2; ++round) {
    const std::vector<ProbeGroup> groups = build_groups(engine, lib);
    if (groups.empty()) break;
    const int c = sched.run_round(groups, ProbePolicy::MinCritical, 1e-6, &hint);
    total += c;
    dry = c == 0 ? dry + 1 : 0;
  }
  sched.drain_speculation();
  return total;
}

struct CircuitReport {
  std::string name;
  std::size_t cells = 0;
  std::size_t groups = 0;
  std::size_t candidates = 0;
  double serial_probes_per_sec = 0.0;
  std::vector<ThreadPoint> points;
};

CircuitReport measure(const std::string& name, const CellLibrary& lib,
                      const std::vector<int>& thread_counts, double min_time) {
  CircuitReport rep;
  rep.name = name;
  const Prepared base = prepare(name, lib);

  // Serial baseline: the raw engine probe loop over the flattened stream.
  {
    Network net = base.net.clone();
    Placement pl = base.pl;
    Sta sta(net, lib, pl);
    RewireEngine engine(net, pl, lib, sta);
    rep.cells = net.num_logic_gates();
    const std::vector<ProbeGroup> groups = build_groups(engine, lib);
    rep.groups = groups.size();
    std::vector<EngineMove> flat;
    for (const ProbeGroup& g : groups) {
      flat.insert(flat.end(), g.moves.begin(), g.moves.end());
    }
    rep.candidates = flat.size();
    if (flat.empty()) return rep;
    Timer t;
    std::size_t probes = 0, i = 0;
    do {
      engine.probe(flat[i++ % flat.size()]);
      ++probes;
    } while (t.seconds() < min_time);
    rep.serial_probes_per_sec = static_cast<double>(probes) / t.seconds();
  }

  for (const int threads : thread_counts) {
    Network net = base.net.clone();
    Placement pl = base.pl;
    Sta sta(net, lib, pl);
    RewireEngine engine(net, pl, lib, sta);
    const std::vector<ProbeGroup> groups = build_groups(engine, lib);
    SchedulerOptions sopt;
    sopt.threads = threads;
    ParallelRewireScheduler sched(engine, sopt);

    ThreadPoint pt;
    pt.threads = threads;

    // Probe throughput: repeated probe-only rounds on the pristine state
    // (no commits, so replicas stay synced after the first round).
    {
      Timer t;
      std::uint64_t probes_before = sched.stats().worker_probes;
      do {
        sched.probe_round(groups, ProbePolicy::MinCritical, 1e-6);
      } while (t.seconds() < min_time);
      const double secs = t.seconds();
      pt.probes_per_sec =
          static_cast<double>(sched.stats().worker_probes - probes_before) / secs;
      pt.speedup = rep.serial_probes_per_sec > 0
                       ? pt.probes_per_sec / rep.serial_probes_per_sec
                       : 0.0;
      const RunningStats dist = sched.worker_probe_stats().merged();
      pt.worker_probes_mean = dist.mean();
      pt.worker_probes_min = dist.min();
      pt.worker_probes_max = dist.max();
      pt.worker_probes_skew =
          dist.mean() > 0.0 ? dist.max() / dist.mean() : 1.0;
      // Load-skew assertion: the weight-balanced sharding must spread probe
      // work across workers. A regression to count-based balance shows up
      // here (c1908 at 8 threads measured min 21 / max 150 probes per
      // round before weights).
      if (threads > 1 && pt.worker_probes_skew > kMaxLoadSkew) {
        std::ostringstream msg;
        msg << name << " threads=" << threads << ": worker probe skew "
            << pt.worker_probes_skew << " exceeds " << kMaxLoadSkew
            << " (mean " << pt.worker_probes_mean << ", max "
            << pt.worker_probes_max << ")";
        throw std::runtime_error(msg.str());
      }
    }

    // Commit efficiency: one arbitrated round from the same baseline.
    {
      const std::uint64_t acc0 = sched.stats().accepted;
      pt.committed = sched.run_round(groups, ProbePolicy::MinCritical, 1e-6);
      const std::uint64_t accepted = sched.stats().accepted - acc0;
      pt.commit_efficiency =
          accepted > 0 ? static_cast<double>(pt.committed) /
                             static_cast<double>(accepted)
                       : 1.0;
    }

    // Pipelined speculation: the same converging round loop with the
    // barrier scheduler and the speculative one, from identical baselines.
    // Speculation may only change WHEN probes run — the committed totals
    // must be identical.
    {
      Network bnet = base.net.clone();
      Placement bpl = base.pl;
      Sta bsta(bnet, lib, bpl);
      RewireEngine bengine(bnet, bpl, lib, bsta);
      SchedulerOptions bopt;
      bopt.threads = threads;
      bopt.speculate = false;
      ParallelRewireScheduler barrier(bengine, bopt);
      pt.committed_loop = converge_rounds(bengine, lib, barrier, 40);

      Network snet = base.net.clone();
      Placement spl = base.pl;
      Sta ssta(snet, lib, spl);
      RewireEngine sengine(snet, spl, lib, ssta);
      SchedulerOptions sspec;
      sspec.threads = threads;
      sspec.speculate = true;
      ParallelRewireScheduler spec(sengine, sspec);
      pt.committed_speculative = converge_rounds(sengine, lib, spec, 40);

      pt.speculative_probes = spec.stats().speculative_probes;
      pt.speculation_hits = spec.stats().speculation_hits;
      pt.speculation_wasted = spec.stats().speculation_wasted;
      if (pt.committed_speculative != pt.committed_loop) {
        std::ostringstream msg;
        msg << name << " threads=" << threads << ": speculative run committed "
            << pt.committed_speculative << " moves vs barrier "
            << pt.committed_loop << " — speculation changed arbitration";
        throw std::runtime_error(msg.str());
      }
    }
    rep.points.push_back(pt);
  }
  return rep;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_parallel.json";
  std::vector<std::string> circuits = {"c1908", "c3540", "c6288"};
  std::vector<int> thread_counts = {1, 2, 4, 8};
  double min_time = 1.0;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value after " << a << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--out") {
      out_path = next();
    } else if (a == "--min-time") {
      min_time = std::stod(next());
    } else if (a == "--circuits") {
      circuits.clear();
      std::stringstream ss(next());
      std::string tok;
      while (std::getline(ss, tok, ',')) circuits.push_back(tok);
    } else if (a == "--threads") {
      thread_counts.clear();
      std::stringstream ss(next());
      std::string tok;
      while (std::getline(ss, tok, ',')) thread_counts.push_back(std::stoi(tok));
    } else {
      std::cerr << "usage: parallel_scaling [--out FILE] [--circuits a,b,c]"
                   " [--threads 1,2,4,8] [--min-time SECONDS]\n";
      return 2;
    }
  }

  const CellLibrary lib = builtin_library_035();
  std::vector<CircuitReport> reports;
  for (const std::string& name : circuits) {
    std::cerr << "[parallel_scaling] " << name << "\n";
    try {
      reports.push_back(measure(name, lib, thread_counts, min_time));
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
  }

  std::ostringstream json;
  json << "{\n  \"bench\": \"parallel_scaling\",\n"
       << "  \"hardware_threads\": " << ThreadPool::hardware_threads() << ",\n"
       << "  \"unit\": \"probes/sec\",\n  \"circuits\": [\n";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const CircuitReport& r = reports[i];
    json << "    {\"name\": \"" << r.name << "\", \"cells\": " << r.cells
         << ", \"groups\": " << r.groups << ", \"candidates\": " << r.candidates
         << ",\n     \"serial_probes_per_sec\": "
         << static_cast<long long>(r.serial_probes_per_sec) << ",\n     \"scaling\": [";
    for (std::size_t j = 0; j < r.points.size(); ++j) {
      const ThreadPoint& p = r.points[j];
      json << (j == 0 ? "" : ", ")
           << "\n       {\"threads\": " << p.threads << ", \"probes_per_sec\": "
           << static_cast<long long>(p.probes_per_sec) << ", \"speedup\": "
           << p.speedup << ", \"committed\": " << p.committed
           << ", \"commit_efficiency\": " << p.commit_efficiency
           << ", \"worker_probes_per_round\": {\"mean\": "
           << static_cast<long long>(p.worker_probes_mean) << ", \"min\": "
           << static_cast<long long>(p.worker_probes_min) << ", \"max\": "
           << static_cast<long long>(p.worker_probes_max) << ", \"skew\": "
           << p.worker_probes_skew << "},\n        \"speculation\": {\"probes\": "
           << p.speculative_probes << ", \"hits\": " << p.speculation_hits
           << ", \"wasted\": " << p.speculation_wasted
           << ", \"committed_loop\": " << p.committed_loop
           << ", \"committed_speculative\": " << p.committed_speculative << "}}";
    }
    json << "\n     ]}" << (i + 1 < reports.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";

  std::ofstream out(out_path);
  out << json.str();
  out.flush();
  std::cout << json.str();
  if (!out) {
    std::cerr << "error: failed to write " << out_path << "\n";
    return 1;
  }
  std::cerr << "wrote " << out_path << "\n";
  return 0;
}
