// Industrial-scale flow gauge (BENCH_scale.json).
//
// The tentpole claim: the per-commit costs of the parallel flow are
// O(dirty), not O(network) — replica delta sync ships only committed
// rounds' touched state, fanout-order canonicalization re-sorts only
// dirty gates, and the slack-epoch cache skips re-enumerating pruned
// swap lists whose driver arrivals are unchanged. This bench runs the
// full flow (generate -> map -> place -> optimize) over the synthetic
// large-circuit profile at several sizes and reports, per size point:
//
//   - per-epoch replica sync bytes (delta path) next to what one full
//     clone of the network would have cost,
//   - gates re-sorted per canonicalize pass after setup,
//   - swap candidates enumerated vs pruned lists served from cache,
//   - timing propagation shape: gates propagated per probe and the
//     slack-margin damp cutoff rate (the probe-cost story),
//   - the phase-timing breakdown (setup/probe/arbitrate/commit/sync).
//
// The acceptance gauge is the growth ratio of the per-commit quantities
// from the smallest to the largest size point: O(dirty) costs stay
// roughly flat (<= 2x) while the network grows 20x. The bench FAILS
// (exit 1) when per-commit sync bytes grow as fast as the mapped network
// itself — that would mean the delta path degenerated to O(network).
//
// Usage: scale_flow [--out BENCH_scale.json] [--sizes 10000,50000,...]
//                   [--threads N] [--iters N] [--seed N]
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "flow/flow.hpp"
#include "gen/large.hpp"
#include "library/cell_library.hpp"
#include "util/timer.hpp"

namespace {

using namespace rapids;

struct SizePoint {
  std::size_t target_gates = 0;
  std::size_t mapped_gates = 0;
  double initial_delay = 0.0;
  double final_delay = 0.0;
  int commits = 0;
  double seconds_total = 0.0;
  double seconds_generate = 0.0;
  double seconds_prepare = 0.0;
  double seconds_setup = 0.0;
  double seconds_probe = 0.0;
  double seconds_arbitrate = 0.0;
  double seconds_commit = 0.0;
  double seconds_sync = 0.0;
  std::uint64_t delta_syncs = 0;
  std::uint64_t full_syncs = 0;
  std::uint64_t delta_commits = 0;
  std::uint64_t sync_bytes_delta = 0;
  std::uint64_t sync_bytes_full = 0;
  double sync_bytes_per_epoch = 0.0;   // delta path, averaged per delta sync
  double sync_bytes_per_commit = 0.0;  // delta path, per commit epoch spanned
  double clone_bytes = 0.0;            // what one full sync ships instead
  std::uint64_t canonicalize_calls = 0;
  std::uint64_t gates_canonicalized = 0;
  double gates_canonicalized_per_call = 0.0;
  std::uint64_t candidates_enumerated = 0;
  std::uint64_t pruned_groups_cached = 0;
  std::uint64_t probes = 0;
  std::uint64_t gates_propagated = 0;
  std::uint64_t damp_cutoffs = 0;
  std::uint64_t margin_refreshes = 0;
  double gates_propagated_per_probe = 0.0;
  double damp_cutoff_rate = 0.0;  // cutoffs / (propagated + cutoffs)
  double seconds_timing = 0.0;
};

SizePoint measure(std::size_t target, std::uint64_t seed, int threads, int iters,
                  const CellLibrary& lib) {
  SizePoint pt;
  pt.target_gates = target;

  Timer gen_timer;
  LargeCircuitOptions lopt;
  lopt.target_gates = target;
  lopt.seed = seed;
  const Network src = make_large_circuit(lopt);
  pt.seconds_generate = gen_timer.seconds();

  FlowOptions fopt;
  fopt.verify = false;  // equivalence checking is its own (non-O(dirty)) story
  fopt.opt.mode = OptMode::Gsg;
  fopt.opt.threads = threads;
  fopt.opt.max_iterations = iters;

  Timer prep_timer;
  PreparedCircuit prepared =
      prepare_circuit("gen" + std::to_string(target), src, lib, fopt);
  pt.seconds_prepare = prep_timer.seconds();
  pt.mapped_gates = prepared.mapped.num_logic_gates();

  const ModeRun run = run_mode(std::move(prepared), lib, fopt.opt.mode, fopt);
  const OptimizerResult& r = run.result;
  pt.initial_delay = r.initial_delay;
  pt.final_delay = r.final_delay;
  pt.commits = r.swaps_committed + r.resizes_committed;
  pt.seconds_total = r.seconds;
  pt.seconds_setup = r.seconds_setup;
  pt.seconds_probe = r.seconds_probe;
  pt.seconds_arbitrate = r.seconds_arbitrate;
  pt.seconds_commit = r.seconds_commit;
  pt.seconds_sync = r.seconds_sync;
  pt.delta_syncs = r.replica_delta_syncs;
  pt.full_syncs = r.replica_full_syncs;
  pt.sync_bytes_delta = r.replica_sync_bytes_delta;
  pt.sync_bytes_full = r.replica_sync_bytes_full;
  pt.delta_commits = r.replica_delta_commits;
  if (r.replica_delta_syncs > 0) {
    pt.sync_bytes_per_epoch = static_cast<double>(r.replica_sync_bytes_delta) /
                              static_cast<double>(r.replica_delta_syncs);
  }
  if (r.replica_delta_commits > 0) {
    pt.sync_bytes_per_commit = static_cast<double>(r.replica_sync_bytes_delta) /
                               static_cast<double>(r.replica_delta_commits);
  }
  if (r.replica_full_syncs > 0) {
    pt.clone_bytes = static_cast<double>(r.replica_sync_bytes_full) /
                     static_cast<double>(r.replica_full_syncs);
  }
  pt.canonicalize_calls = r.canonicalize_calls;
  pt.gates_canonicalized = r.gates_canonicalized;
  if (r.canonicalize_calls > 0) {
    pt.gates_canonicalized_per_call = static_cast<double>(r.gates_canonicalized) /
                                      static_cast<double>(r.canonicalize_calls);
  }
  pt.candidates_enumerated = r.candidates_enumerated;
  pt.pruned_groups_cached = r.pruned_groups_cached;
  pt.probes = r.probes;
  pt.gates_propagated = r.gates_propagated;
  pt.damp_cutoffs = r.damp_cutoffs;
  pt.margin_refreshes = r.margin_refreshes;
  pt.seconds_timing = r.seconds_timing;
  if (r.probes > 0) {
    pt.gates_propagated_per_probe =
        static_cast<double>(r.gates_propagated) / static_cast<double>(r.probes);
  }
  if (r.gates_propagated + r.damp_cutoffs > 0) {
    pt.damp_cutoff_rate =
        static_cast<double>(r.damp_cutoffs) /
        static_cast<double>(r.gates_propagated + r.damp_cutoffs);
  }
  return pt;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_scale.json";
  std::vector<std::size_t> sizes = {10000, 50000, 100000, 200000, 500000};
  int threads = 2;
  int iters = 1;
  std::uint64_t seed = 7;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value after " << a << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--out") {
      out_path = next();
    } else if (a == "--sizes") {
      sizes.clear();
      std::stringstream ss(next());
      std::string tok;
      while (std::getline(ss, tok, ',')) sizes.push_back(std::stoull(tok));
    } else if (a == "--threads") {
      threads = std::stoi(next());
    } else if (a == "--iters") {
      iters = std::stoi(next());
    } else if (a == "--seed") {
      seed = std::stoull(next());
    } else {
      std::cerr << "usage: scale_flow [--out FILE] [--sizes n,n,...]"
                   " [--threads N] [--iters N] [--seed N]\n";
      return 2;
    }
  }

  const CellLibrary lib = builtin_library_035();
  std::vector<SizePoint> points;
  for (const std::size_t size : sizes) {
    std::cerr << "[scale_flow] " << size << " gates, threads=" << threads << "\n";
    try {
      points.push_back(measure(size, seed, threads, iters, lib));
    } catch (const std::exception& e) {
      std::cerr << "error at size " << size << ": " << e.what() << "\n";
      return 1;
    }
  }

  // Growth of the per-commit O(dirty) quantities, smallest -> largest.
  double sync_growth = 0.0, canon_growth = 0.0, size_growth = 0.0;
  double probe_cost_growth = 0.0;
  if (points.size() >= 2) {
    const SizePoint& lo = points.front();
    const SizePoint& hi = points.back();
    if (lo.sync_bytes_per_commit > 0) {
      sync_growth = hi.sync_bytes_per_commit / lo.sync_bytes_per_commit;
    }
    if (lo.gates_canonicalized_per_call > 0) {
      canon_growth = hi.gates_canonicalized_per_call / lo.gates_canonicalized_per_call;
    }
    if (lo.gates_propagated_per_probe > 0) {
      probe_cost_growth =
          hi.gates_propagated_per_probe / lo.gates_propagated_per_probe;
    }
    size_growth = static_cast<double>(hi.mapped_gates) /
                  static_cast<double>(lo.mapped_gates > 0 ? lo.mapped_gates : 1);
  }

  std::ostringstream json;
  json << "{\n  \"bench\": \"scale_flow\",\n"
       << "  \"threads\": " << threads << ",\n"
       << "  \"iters\": " << iters << ",\n"
       << "  \"seed\": " << seed << ",\n"
       << "  \"network_size_growth\": " << size_growth << ",\n"
       << "  \"sync_bytes_per_commit_growth\": " << sync_growth << ",\n"
       << "  \"gates_canonicalized_per_call_growth\": " << canon_growth << ",\n"
       << "  \"gates_propagated_per_probe_growth\": " << probe_cost_growth << ",\n"
       << "  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SizePoint& p = points[i];
    json << "    {\"target_gates\": " << p.target_gates
         << ", \"mapped_gates\": " << p.mapped_gates
         << ", \"initial_delay_ns\": " << p.initial_delay
         << ", \"final_delay_ns\": " << p.final_delay
         << ", \"commits\": " << p.commits << ",\n"
         << "     \"seconds\": {\"generate\": " << p.seconds_generate
         << ", \"prepare\": " << p.seconds_prepare
         << ", \"optimize\": " << p.seconds_total
         << ", \"setup\": " << p.seconds_setup
         << ", \"probe\": " << p.seconds_probe
         << ", \"arbitrate\": " << p.seconds_arbitrate
         << ", \"commit\": " << p.seconds_commit
         << ", \"sync\": " << p.seconds_sync
         << ", \"margins\": " << p.seconds_timing << "},\n"
         << "     \"replica_sync\": {\"delta_syncs\": " << p.delta_syncs
         << ", \"full_syncs\": " << p.full_syncs
         << ", \"delta_commits_covered\": " << p.delta_commits
         << ", \"bytes_delta_total\": " << p.sync_bytes_delta
         << ", \"bytes_full_total\": " << p.sync_bytes_full
         << ", \"bytes_per_epoch\": " << p.sync_bytes_per_epoch
         << ", \"bytes_per_commit\": " << p.sync_bytes_per_commit
         << ", \"clone_bytes\": " << p.clone_bytes << "},\n"
         << "     \"commit_path\": {\"canonicalize_calls\": " << p.canonicalize_calls
         << ", \"gates_canonicalized\": " << p.gates_canonicalized
         << ", \"gates_per_call\": " << p.gates_canonicalized_per_call
         << ", \"candidates_enumerated\": " << p.candidates_enumerated
         << ", \"pruned_groups_cached\": " << p.pruned_groups_cached << "},\n"
         << "     \"timing\": {\"probes\": " << p.probes
         << ", \"gates_propagated\": " << p.gates_propagated
         << ", \"gates_propagated_per_probe\": " << p.gates_propagated_per_probe
         << ", \"damp_cutoffs\": " << p.damp_cutoffs
         << ", \"damp_cutoff_rate\": " << p.damp_cutoff_rate
         << ", \"margin_refreshes\": " << p.margin_refreshes << "}}"
         << (i + 1 < points.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";

  std::ofstream out(out_path);
  out << json.str();
  out.flush();
  std::cout << json.str();
  if (!out) {
    std::cerr << "error: failed to write " << out_path << "\n";
    return 1;
  }
  std::cerr << "wrote " << out_path << "\n";

  // O(dirty) acceptance check: per-commit sync bytes must grow strictly
  // slower than the mapped network. A ratio at or above the size growth
  // means the dedup+compacted delta journal degenerated to shipping
  // O(network) state per commit.
  if (points.size() >= 2 && sync_growth > 0.0 && size_growth > 0.0 &&
      sync_growth >= size_growth) {
    std::cerr << "FAIL: sync bytes_per_commit grew " << sync_growth
              << "x while the network grew " << size_growth
              << "x — the delta sync path is no longer O(dirty)\n";
    return 1;
  }
  return 0;
}
