// Fig. 3 reproduction: cross-supergate group swapping via DeMorgan
// transformation (Theorem 2).
//
// Rebuilds the figure (SG1 = AND(a,b,c), SG2 = OR(d,e,g) with symmetric
// outputs), applies the group swap, prints what changed (retyped gates,
// inverters) and verifies equivalence. Then sweeps random netlists counting
// cross-supergate opportunities and validating every applied exchange.
#include <iostream>

#include "library/cell_library.hpp"
#include "netlist/builder.hpp"
#include "place/placement.hpp"
#include "rewire/cross_sg.hpp"
#include "sym/gisg.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"
#include "verify/equivalence.hpp"

using namespace rapids;

namespace {

Placement flat_placement(const Network& net) {
  Placement pl(net.id_bound());
  net.for_each_gate([&](GateId g) { pl.set(g, Point{0, 0}); });
  return pl;
}

void figure_case() {
  std::cout << "== Fig. 3 case study ==\n";
  NetworkBuilder b;
  const GateId a = b.input("a"), bb = b.input("b"), c = b.input("c");
  const GateId d = b.input("d"), e = b.input("e"), g = b.input("g");
  const GateId sg1 = b.and_({a, bb, c}, "SG1");
  const GateId sg2 = b.or_({d, e, g}, "SG2");
  b.output("f", b.xor_({sg1, sg2}));
  Network net = b.take();
  const Network golden = net.clone();
  Placement pl = flat_placement(net);
  const CellLibrary lib = builtin_library_035();

  const GisgPartition part = extract_gisg(net);
  const auto cands = find_cross_sg_candidates(part, net);
  std::cout << "candidates found: " << cands.size() << "\n";
  if (cands.empty()) return;
  const CrossSgEdit edit = apply_cross_sg_swap(net, pl, lib, part, cands[0]);
  std::cout << "applied: retyped " << edit.gates_retyped << " gates, added "
            << edit.inverters_added << " inverters\n";
  std::cout << "SG1 gate is now " << to_string(net.type(net.find("SG1")))
            << ", SG2 gate is now " << to_string(net.type(net.find("SG2"))) << "\n";
  std::cout << "fanins of SG1 after swap:";
  for (const GateId f : net.fanins(net.find("SG1"))) std::cout << ' ' << net.name(f);
  std::cout << "\nequivalence: "
            << (check_equivalence(golden, net).equivalent ? "OK" : "BROKEN") << "\n";
}

void random_sweep() {
  std::cout << "\n== random-netlist sweep ==\n";
  std::cout << "seed  gates  candidates  applied  retyped  invs  all_equiv\n";
  const CellLibrary lib = builtin_library_035();
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    // Build a netlist rich in AND/OR groups under XOR combiners.
    NetworkBuilder b;
    Rng rng(seed);
    std::vector<GateId> pool;
    for (int i = 0; i < 24; ++i) pool.push_back(b.input("x" + std::to_string(i)));
    std::vector<GateId> groups;
    for (int i = 0; i < 12; ++i) {
      std::vector<GateId> ins;
      const int n = rng.next_int(2, 4);
      for (int k = 0; k < n; ++k) ins.push_back(pool[rng.next_below(pool.size())]);
      groups.push_back(rng.next_bool() ? b.and_(ins) : b.or_(ins));
    }
    for (int o = 0; o < 4; ++o) {
      const GateId u = groups[rng.next_below(groups.size())];
      const GateId v = groups[rng.next_below(groups.size())];
      if (u == v) continue;
      b.output("y" + std::to_string(o), b.xor_({u, v}));
    }
    Network net = b.take();
    net.sweep_dangling();
    const Network golden = net.clone();
    Placement pl = flat_placement(net);

    int applied = 0, retyped = 0, invs = 0;
    bool all_equiv = true;
    // Apply one candidate per fresh extraction (each swap invalidates the
    // partition), a few rounds deep.
    std::size_t total_candidates = 0;
    for (int round = 0; round < 3; ++round) {
      const GisgPartition part = extract_gisg(net);
      const auto cands = find_cross_sg_candidates(part, net);
      if (round == 0) total_candidates = cands.size();
      if (cands.empty()) break;
      const CrossSgEdit edit = apply_cross_sg_swap(net, pl, lib, part, cands[0]);
      ++applied;
      retyped += edit.gates_retyped;
      invs += edit.inverters_added;
      all_equiv = all_equiv && check_equivalence(golden, net).equivalent;
    }
    std::printf("%4llu %6zu %11zu %8d %8d %5d %10s\n",
                static_cast<unsigned long long>(seed), golden.num_logic_gates(),
                total_candidates, applied, retyped, invs, all_equiv ? "OK" : "BROKEN");
  }
}

}  // namespace

int main() {
  figure_case();
  random_sweep();
  return 0;
}
