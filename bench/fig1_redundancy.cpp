// Fig. 1 reproduction: redundancy discovery during supergate extraction.
//
// Part A reconstructs the figure's two cases on toy netlists and shows the
// engine classifying them (case 1: conflicting implication at a stem ->
// cone constant; case 2: agreeing implication -> untestable branch).
// Part B sweeps PLA-style circuits with injected redundancies and reports
// detection counts, fix results and verified equivalence, plus the
// detection throughput (the paper's claim: redundancies come for free
// during linear-time extraction).
#include <iostream>

#include "gen/control.hpp"
#include "netlist/builder.hpp"
#include "sym/gisg.hpp"
#include "sym/redundancy.hpp"
#include "util/timer.hpp"
#include "verify/equivalence.hpp"

using namespace rapids;

namespace {

void part_a() {
  std::cout << "== Fig. 1 case study ==\n";
  {
    // Case 1: f = AND(x, g, INV(g)) — backward implication from f=1 demands
    // g=1 and g=0 simultaneously.
    NetworkBuilder b;
    const GateId x = b.input("x"), y = b.input("y"), z = b.input("z");
    const GateId g = b.or_({y, z});
    b.output("f", b.and_({x, g, b.inv(g)}));
    b.output("keep", g);
    Network net = b.take();
    const Network golden = net.clone();
    const GisgPartition part = extract_gisg(net);
    std::cout << "case 1 netlist: found " << part.redundancies.size()
              << " redundancy (kind="
              << (part.redundancies[0].kind == RedundancyRecord::Kind::ConflictConstant
                      ? "conflict->constant"
                      : "?")
              << ")\n";
    apply_all_redundancies(net, part);
    std::cout << "  after fix: " << net.num_logic_gates() << " logic gates (was "
              << golden.num_logic_gates() << "), equivalence "
              << (check_equivalence(golden, net).equivalent ? "OK" : "BROKEN") << "\n";
  }
  {
    // Case 2: f = AND(x, g, g) — both branches implied to the same value.
    NetworkBuilder b;
    const GateId x = b.input("x"), y = b.input("y"), z = b.input("z");
    const GateId g = b.or_({y, z});
    b.output("f", b.and_({x, g, g}));
    Network net = b.take();
    const Network golden = net.clone();
    const GisgPartition part = extract_gisg(net);
    std::cout << "case 2 netlist: found " << part.redundancies.size()
              << " redundancy (kind="
              << (part.redundancies[0].kind == RedundancyRecord::Kind::RedundantBranch
                      ? "untestable-branch"
                      : "?")
              << ")\n";
    apply_all_redundancies(net, part);
    std::cout << "  after fix: " << net.num_logic_gates() << " logic gates (was "
              << golden.num_logic_gates() << "), equivalence "
              << (check_equivalence(golden, net).equivalent ? "OK" : "BROKEN") << "\n";
  }
}

void part_b() {
  std::cout << "\n== redundancy sweep on PLA-style circuits ==\n";
  std::cout << "inputs products dup%% conf%% | gates  found  fixed  equiv  extract_ms\n";
  for (const double rate : {0.0, 0.1, 0.3, 0.6}) {
    PlaSpec spec;
    spec.num_inputs = 40;
    spec.num_outputs = 20;
    spec.num_products = 80;
    spec.dup_literal_rate = rate;
    spec.conflict_literal_rate = rate / 3.0;
    spec.seed = 1234 + static_cast<std::uint64_t>(rate * 100);
    Network net = make_pla(spec);
    const Network golden = net.clone();

    Timer t;
    const GisgPartition part = extract_gisg(net);
    const double extract_ms = t.milliseconds();

    RedundancyFixStats stats;
    for (const RedundancyRecord& rec : part.redundancies) {
      apply_redundancy(net, part, rec, stats);
    }
    const std::size_t fixed =
        stats.branches_tied + stats.constants_created + stats.xor_pairs_cancelled;
    const bool equiv = check_equivalence(golden, net).equivalent;
    std::printf("%6d %8d %5.0f %5.0f | %5zu %6zu %6zu %6s %10.2f\n", spec.num_inputs,
                spec.num_products, 100 * spec.dup_literal_rate,
                100 * spec.conflict_literal_rate, golden.num_logic_gates(),
                part.redundancies.size(), fixed, equiv ? "OK" : "BROKEN", extract_ms);
  }
}

}  // namespace

int main() {
  part_a();
  part_b();
  return 0;
}
