// Table 1 reproduction harness.
//
// For each of the paper's 19 circuits (regenerated per DESIGN.md §5):
// map to the 0.35um-class library, place, then run the three optimizers
// (gsg / GS / gsg+GS) from the same starting point and print the paper's
// exact columns, followed by the average row.
//
// Usage: table1_rapids [--quick] [--full] [circuit ...]
//   --quick : small subset (alu2, c432, c499) — used in CI sweeps
//   --full  : all 19 circuits (default runs a representative 12 to keep a
//             bench sweep under a few minutes; pass --full for the paper's
//             complete list)
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "flow/flow.hpp"
#include "library/cell_library.hpp"
#include "gen/suite.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace {

std::vector<std::string> pick_circuits(int argc, char** argv) {
  bool quick = false, full = false;
  std::vector<std::string> explicit_names;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--full") == 0) {
      full = true;
    } else {
      explicit_names.emplace_back(argv[i]);
    }
  }
  if (!explicit_names.empty()) return explicit_names;
  if (quick) return {"alu2", "c432", "c499"};
  std::vector<std::string> names;
  for (const rapids::BenchmarkInfo& info : rapids::benchmark_suite()) {
    if (!full && info.paper_gates > 3000) continue;  // drop c6288/i10/s15850/s38417
    names.push_back(info.name);
  }
  return names;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rapids;
  Logger::instance().set_level(LogLevel::Warning);
  const CellLibrary lib = builtin_library_035();

  FlowOptions options;
  options.placer.effort = 4.0;
  options.placer.num_temps = 16;
  options.opt.max_iterations = 4;
  options.verify = true;

  std::vector<BenchmarkRow> rows;
  Timer total;
  for (const std::string& name : pick_circuits(argc, argv)) {
    Timer t;
    std::cerr << "[table1] " << name << " ..." << std::flush;
    const PreparedCircuit prepared = prepare_benchmark(name, lib, options);
    rows.push_back(produce_table1_row(prepared, lib, options));
    std::cerr << " done in " << t.seconds() << " s\n";
  }

  std::cout << "\nTable 1 — post-placement optimization (RAPIDS reproduction)\n";
  std::cout << "Columns match the paper: delay improvements in %, cpu in seconds,\n"
               "area change in % (negative = smaller), coverage = gates in\n"
               "non-trivial supergates, L = largest supergate fanin, #red =\n"
               "redundancies found during extraction.\n\n";
  print_table1(rows, std::cout);
  std::cout << "\ntotal wall time: " << total.seconds() << " s\n";
  return 0;
}
