// Linear-time claim (§3): GISG extraction + symmetry identification scale
// linearly in network size. google-benchmark over chains, trees, grids and
// mapped multiplier arrays from 1k to 256k gates; the reported items/sec
// should stay flat when the algorithm is linear.
#include <benchmark/benchmark.h>

#include "gen/arith.hpp"
#include "netlist/builder.hpp"
#include "sym/gisg.hpp"
#include "util/rng.hpp"

namespace {

using namespace rapids;

/// Wide-fanin AND chain: single giant supergate.
Network make_chain(int gates) {
  NetworkBuilder b;
  GateId cur = b.input("x");
  for (int i = 0; i < gates; ++i) {
    cur = b.and_({cur, b.input("y" + std::to_string(i))});
  }
  b.output("f", cur);
  return b.take();
}

/// Balanced NAND tree: alternating absorb/stop boundaries.
Network make_tree(int leaves) {
  NetworkBuilder b;
  std::vector<GateId> layer;
  for (int i = 0; i < leaves; ++i) layer.push_back(b.input("x" + std::to_string(i)));
  while (layer.size() > 1) {
    std::vector<GateId> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      next.push_back(b.nand({layer[i], layer[i + 1]}));
    }
    if (layer.size() % 2 == 1) next.push_back(layer.back());
    layer = std::move(next);
  }
  b.output("f", layer[0]);
  return b.take();
}

/// Reconvergent random DAG: many supergates, many stems.
Network make_dag(int gates, std::uint64_t seed) {
  NetworkBuilder b;
  Rng rng(seed);
  std::vector<GateId> pool;
  for (int i = 0; i < 64; ++i) pool.push_back(b.input("x" + std::to_string(i)));
  static constexpr GateType kTypes[6] = {GateType::And,  GateType::Nand, GateType::Or,
                                         GateType::Nor,  GateType::Xor,  GateType::Inv};
  for (int i = 0; i < gates; ++i) {
    const GateType t = kTypes[rng.next_below(6)];
    if (is_multi_input(t)) {
      pool.push_back(b.gate(t, {pool[rng.next_below(pool.size())],
                                pool[rng.next_below(pool.size())]}));
    } else {
      pool.push_back(b.gate(t, {pool[rng.next_below(pool.size())]}));
    }
  }
  for (int o = 0; o < 32; ++o) {
    b.output("y" + std::to_string(o), pool[pool.size() - 1 - static_cast<std::size_t>(o)]);
  }
  Network net = b.take();
  net.sweep_dangling();
  return net;
}

void BM_ExtractChain(benchmark::State& state) {
  const Network net = make_chain(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(extract_gisg(net));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_ExtractTree(benchmark::State& state) {
  const Network net = make_tree(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(extract_gisg(net));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(net.num_logic_gates()));
}

void BM_ExtractDag(benchmark::State& state) {
  const Network net = make_dag(static_cast<int>(state.range(0)), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(extract_gisg(net));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(net.num_logic_gates()));
}

void BM_ExtractMultiplier(benchmark::State& state) {
  const Network net = make_array_multiplier(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(extract_gisg(net));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(net.num_logic_gates()));
}

}  // namespace

BENCHMARK(BM_ExtractChain)->Arg(1000)->Arg(4000)->Arg(16000)->Arg(64000)->Arg(256000);
BENCHMARK(BM_ExtractTree)->Arg(1024)->Arg(4096)->Arg(16384)->Arg(65536)->Arg(262144);
BENCHMARK(BM_ExtractDag)->Arg(1000)->Arg(4000)->Arg(16000)->Arg(64000)->Arg(256000);
BENCHMARK(BM_ExtractMultiplier)->Arg(8)->Arg(16)->Arg(32)->Arg(64);
BENCHMARK_MAIN();
