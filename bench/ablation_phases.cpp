// Ablation study on the optimizer design choices DESIGN.md calls out:
//   1. two-phase engine (min-slack + relaxation) vs phase-A-only
//      (relaxation's job per the paper: escape local minima);
//   2. leaf-only swaps vs full internal-pin swaps (logic-level reduction);
//   3. candidate cap per supergate (quality/runtime trade).
// Plain binary printing one table per ablation over a few circuits.
#include <cstdio>
#include <iostream>

#include "flow/flow.hpp"
#include "gen/suite.hpp"
#include "library/cell_library.hpp"
#include "util/timer.hpp"

using namespace rapids;

namespace {

struct Variant {
  const char* label;
  OptimizerOptions opt;
};

void run_ablation(const char* title, const std::vector<Variant>& variants,
                  const std::vector<std::string>& circuits, const CellLibrary& lib) {
  std::cout << "\n== " << title << " ==\n";
  std::printf("%-8s", "ckt");
  for (const Variant& v : variants) std::printf(" | %-18s", v.label);
  std::printf("\n");
  FlowOptions flow;
  flow.placer.effort = 3.0;
  flow.placer.num_temps = 12;
  flow.verify = true;
  for (const std::string& name : circuits) {
    const PreparedCircuit prepared = prepare_benchmark(name, lib, flow);
    std::printf("%-8s", name.c_str());
    for (const Variant& v : variants) {
      FlowOptions f = flow;
      f.opt = v.opt;
      const ModeRun run = run_mode(prepared, lib, v.opt.mode, f);
      std::printf(" | %6.2f%% %6.2fs %s", run.result.improvement_percent(),
                  run.result.seconds, run.verified ? " " : "!");
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  const CellLibrary lib = builtin_library_035();
  const std::vector<std::string> circuits = {"alu2", "c432", "c499", "x3"};

  {
    OptimizerOptions both;
    both.mode = OptMode::Gsg;
    both.max_iterations = 4;
    OptimizerOptions phase_a = both;
    phase_a.max_iterations = 1;  // single round ~= min-slack phase dominated
    run_ablation("two-phase iterations vs single round (gsg)",
                 {{"4 rounds A+B", both}, {"1 round A+B", phase_a}}, circuits, lib);
  }
  {
    OptimizerOptions full;
    full.mode = OptMode::Gsg;
    full.max_iterations = 3;
    OptimizerOptions leaves = full;
    leaves.leaves_only_swaps = true;
    run_ablation("internal-pin swaps vs leaf-only swaps (gsg)",
                 {{"all covered pins", full}, {"leaf pins only", leaves}}, circuits,
                 lib);
  }
  {
    OptimizerOptions wide;
    wide.mode = OptMode::GsgPlusGS;
    wide.max_iterations = 3;
    wide.max_swaps_per_sg = 256;
    OptimizerOptions narrow = wide;
    narrow.max_swaps_per_sg = 8;
    run_ablation("swap-candidate cap per supergate (gsg+GS)",
                 {{"cap 256", wide}, {"cap 8", narrow}}, circuits, lib);
  }
  return 0;
}
