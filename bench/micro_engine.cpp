// Engine regression gauge: probe / commit throughput of the transactional
// rewiring path, per circuit, emitted as machine-readable JSON so the perf
// trajectory is tracked across PRs ("very computationally efficient", §1).
//
// One probe  = evaluate one swap candidate against the incremental STA and
//              roll the network and timing state back exactly.
// One commit = apply a swap candidate and keep it (the matching measurement
//              commits each swap and then commits its exact inverse, so the
//              circuit is back in its initial state when the clock stops).
//
// Usage: micro_engine [--out BENCH_engine.json] [--circuits a,b,c]
//                     [--min-time SECONDS] [--baseline FILE] [--threads N]
//   --baseline merges "probes_per_sec" of a previous run into the report as
//   "baseline_probes_per_sec" (the pre-refactor anchor in acceptance gates).
//   --threads N additionally measures the parallel scheduler's probe
//   throughput at N workers over the same candidates, so the report records
//   serial and parallel throughput against the same baseline (N=0 skips;
//   default 2). bench/parallel_scaling sweeps thread counts in depth.
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "engine/rewire_engine.hpp"
#include "gen/suite.hpp"
#include "library/cell_library.hpp"
#include "mapping/mapper.hpp"
#include "parallel/scheduler.hpp"
#include "place/placer.hpp"
#include "sym/gisg.hpp"
#include "sym/symmetry.hpp"
#include "timing/sta.hpp"
#include "util/timer.hpp"

namespace {

using namespace rapids;

struct CircuitReport {
  std::string name;
  std::size_t cells = 0;
  std::size_t candidates = 0;
  double probes_per_sec = 0.0;
  double commits_per_sec = 0.0;
  double parallel_probes_per_sec = 0.0;
  int parallel_threads = 0;
};

CircuitReport measure(const std::string& name, const CellLibrary& lib,
                      double min_time, int threads) {
  CircuitReport rep;
  rep.name = name;

  Network net = map_network(make_benchmark(name), lib).mapped;
  PlacerOptions popt;
  popt.effort = 2.0;
  popt.num_temps = 8;
  Placement pl = place(net, lib, popt);
  Sta sta(net, lib, pl);
  RewireEngine engine(net, pl, lib, sta);

  rep.cells = net.num_logic_gates();
  const std::vector<SwapCandidate> swaps = enumerate_all_swaps(engine.partition(), net);
  rep.candidates = swaps.size();
  if (swaps.empty()) return rep;

  // Probe throughput: evaluate-and-rollback over the candidate list.
  {
    Timer t;
    std::size_t probes = 0, i = 0;
    do {
      engine.probe(EngineMove::swap(swaps[i++ % swaps.size()]));
      ++probes;
    } while (t.seconds() < min_time);
    rep.probes_per_sec = static_cast<double>(probes) / t.seconds();
  }

  // Commit throughput: commit each candidate, then commit its exact undo.
  // Re-extraction is not needed because the state returns to the baseline
  // after every pair (the stale-candidate contract stays satisfied).
  {
    Timer t;
    std::size_t commits = 0, i = 0;
    do {
      engine.commit_and_revert(EngineMove::swap(swaps[i++ % swaps.size()]));
      commits += 2;
    } while (t.seconds() < min_time);
    rep.commits_per_sec = static_cast<double>(commits) / t.seconds();
  }

  // Parallel probe throughput: the same candidates, one group per
  // supergate, through the conflict-sharded scheduler at `threads` workers.
  if (threads > 0) {
    std::vector<ProbeGroup> groups;
    {
      const GisgPartition& part = engine.partition();
      std::vector<ProbeGroup> by_sg(part.sgs.size());
      for (const SwapCandidate& c : swaps) {
        by_sg[static_cast<std::size_t>(c.sg_index)].moves.push_back(
            EngineMove::swap(c));
      }
      for (ProbeGroup& g : by_sg) {
        if (!g.moves.empty()) groups.push_back(std::move(g));
      }
    }
    SchedulerOptions sopt;
    sopt.threads = threads;
    ParallelRewireScheduler sched(engine, sopt);
    Timer t;
    const std::uint64_t before = sched.stats().worker_probes;
    do {
      sched.probe_round(groups, ProbePolicy::MinCritical, 1e-6);
    } while (t.seconds() < min_time);
    rep.parallel_probes_per_sec =
        static_cast<double>(sched.stats().worker_probes - before) / t.seconds();
    rep.parallel_threads = threads;
  }
  return rep;
}

/// Extract `"probes_per_sec": <num>` values of a previous report, keyed by
/// the preceding `"name": "<circuit>"`. Tiny fixed-shape scan, not a JSON
/// parser; good enough for our own output format.
double parse_probes(const std::string& text, const std::string& circuit) {
  const std::string key = "\"name\": \"" + circuit + "\"";
  std::size_t at = text.find(key);
  if (at == std::string::npos) return 0.0;
  at = text.find("\"probes_per_sec\":", at);
  if (at == std::string::npos) return 0.0;
  return std::strtod(text.c_str() + at + std::strlen("\"probes_per_sec\":"), nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_engine.json";
  std::string baseline_path;
  std::vector<std::string> circuits = {"alu2", "alu4", "c432", "c1908"};
  double min_time = 1.0;
  int threads = 2;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value after " << a << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--out") {
      out_path = next();
    } else if (a == "--baseline") {
      baseline_path = next();
    } else if (a == "--min-time") {
      const std::string v = next();
      char* end = nullptr;
      min_time = std::strtod(v.c_str(), &end);
      if (end == v.c_str() || *end != '\0' || min_time <= 0.0) {
        std::cerr << "invalid --min-time value: " << v << "\n";
        return 2;
      }
    } else if (a == "--circuits") {
      circuits.clear();
      std::stringstream ss(next());
      std::string tok;
      while (std::getline(ss, tok, ',')) circuits.push_back(tok);
    } else if (a == "--threads") {
      threads = std::stoi(next());
      if (threads < 0) {
        std::cerr << "invalid --threads value\n";
        return 2;
      }
    } else {
      std::cerr << "usage: micro_engine [--out FILE] [--circuits a,b,c]"
                   " [--min-time SECONDS] [--baseline FILE] [--threads N]\n";
      return 2;
    }
  }

  std::string baseline_text;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::cerr << "error: cannot open baseline file " << baseline_path << "\n";
      return 2;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    baseline_text = ss.str();
  }

  const CellLibrary lib = builtin_library_035();
  std::vector<CircuitReport> reports;
  for (const std::string& name : circuits) {
    std::cerr << "[micro_engine] " << name << "\n";
    try {
      reports.push_back(measure(name, lib, min_time, threads));
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
  }

  std::ostringstream json;
  json << "{\n  \"bench\": \"micro_engine\",\n  \"unit\": \"ops/sec\",\n"
       << "  \"circuits\": [\n";
  double geo_probe = 1.0, geo_ratio = 1.0;
  int n_ratio = 0, n_probe = 0;
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const CircuitReport& r = reports[i];
    json << "    {\"name\": \"" << r.name << "\", \"cells\": " << r.cells
         << ", \"candidates\": " << r.candidates << ", \"probes_per_sec\": "
         << static_cast<long long>(r.probes_per_sec) << ", \"commits_per_sec\": "
         << static_cast<long long>(r.commits_per_sec);
    if (r.parallel_threads > 0) {
      json << ", \"parallel_threads\": " << r.parallel_threads
           << ", \"parallel_probes_per_sec\": "
           << static_cast<long long>(r.parallel_probes_per_sec);
      if (r.probes_per_sec > 0) {
        json << ", \"parallel_speedup\": "
             << r.parallel_probes_per_sec / r.probes_per_sec;
      }
    }
    if (!baseline_text.empty()) {
      const double base = parse_probes(baseline_text, r.name);
      if (base > 0.0) {
        json << ", \"baseline_probes_per_sec\": " << static_cast<long long>(base)
             << ", \"speedup\": " << r.probes_per_sec / base;
        geo_ratio *= r.probes_per_sec / base;
        ++n_ratio;
      }
    }
    json << "}" << (i + 1 < reports.size() ? "," : "") << "\n";
    if (r.probes_per_sec > 0) {
      geo_probe *= r.probes_per_sec;
      ++n_probe;
    } else {
      std::cerr << "note: " << r.name
                << " had zero probe throughput; excluded from geomean\n";
    }
  }
  json << "  ],\n  \"geomean_probes_per_sec\": "
       << static_cast<long long>(n_probe > 0 ? std::pow(geo_probe, 1.0 / n_probe) : 0);
  if (n_ratio > 0) {
    json << ",\n  \"geomean_speedup\": " << std::pow(geo_ratio, 1.0 / n_ratio);
  }
  json << "\n}\n";

  std::ofstream out(out_path);
  out << json.str();
  out.flush();
  std::cout << json.str();
  if (!out) {
    std::cerr << "error: failed to write " << out_path << "\n";
    return 1;
  }
  std::cerr << "wrote " << out_path << "\n";
  return 0;
}
