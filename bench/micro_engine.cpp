// Engine micro-benchmarks: incremental vs full STA, swap apply/undo cost,
// swap enumeration, equivalence checking throughput. These quantify why the
// optimizer can probe thousands of candidate moves ("very computationally
// efficient", §1).
#include <benchmark/benchmark.h>

#include "gen/suite.hpp"
#include "library/cell_library.hpp"
#include "mapping/mapper.hpp"
#include "place/placer.hpp"
#include "rewire/swap.hpp"
#include "sym/gisg.hpp"
#include "sym/symmetry.hpp"
#include "timing/sta.hpp"
#include "verify/equivalence.hpp"

namespace {

using namespace rapids;

struct Fixture {
  CellLibrary lib = builtin_library_035();
  Network net;
  Placement pl;
  std::vector<SwapCandidate> swaps;

  explicit Fixture(const std::string& name) {
    const Network src = make_benchmark(name);
    net = map_network(src, lib).mapped;
    PlacerOptions popt;
    popt.effort = 2.0;
    popt.num_temps = 8;
    pl = place(net, lib, popt);
    const GisgPartition part = extract_gisg(net);
    swaps = enumerate_all_swaps(part, net);
  }
};

Fixture& alu4_fixture() {
  static Fixture f("alu4");
  return f;
}

void BM_StaFullRun(benchmark::State& state) {
  Fixture& f = alu4_fixture();
  Sta sta(f.net, f.lib, f.pl);
  for (auto _ : state) {
    sta.run_full();
    benchmark::DoNotOptimize(sta.critical_delay());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(f.net.num_logic_gates()));
}

void BM_StaIncrementalSwapProbe(benchmark::State& state) {
  Fixture& f = alu4_fixture();
  Sta sta(f.net, f.lib, f.pl);
  std::size_t i = 0;
  for (auto _ : state) {
    const SwapCandidate& cand = f.swaps[i++ % f.swaps.size()];
    sta.begin();
    SwapEdit edit = apply_swap(f.net, f.pl, f.lib, cand);
    for (const GateId d : edit.dirty_nets) sta.invalidate_net(d);
    sta.propagate();
    benchmark::DoNotOptimize(sta.critical_delay());
    undo_swap(f.net, f.pl, edit);
    sta.rollback();
  }
}

void BM_SwapApplyUndo(benchmark::State& state) {
  Fixture& f = alu4_fixture();
  std::size_t i = 0;
  for (auto _ : state) {
    const SwapCandidate& cand = f.swaps[i++ % f.swaps.size()];
    SwapEdit edit = apply_swap(f.net, f.pl, f.lib, cand);
    undo_swap(f.net, f.pl, edit);
  }
}

void BM_EnumerateSwaps(benchmark::State& state) {
  Fixture& f = alu4_fixture();
  const GisgPartition part = extract_gisg(f.net);
  for (auto _ : state) {
    benchmark::DoNotOptimize(enumerate_all_swaps(part, f.net));
  }
}

void BM_ExtractionOnMapped(benchmark::State& state) {
  Fixture& f = alu4_fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(extract_gisg(f.net));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(f.net.num_logic_gates()));
}

void BM_EquivalenceCheck(benchmark::State& state) {
  Fixture& f = alu4_fixture();
  const Network copy = f.net.clone();
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_equivalence(f.net, copy));
  }
}

}  // namespace

BENCHMARK(BM_StaFullRun);
BENCHMARK(BM_StaIncrementalSwapProbe);
BENCHMARK(BM_SwapApplyUndo);
BENCHMARK(BM_EnumerateSwaps);
BENCHMARK(BM_ExtractionOnMapped);
BENCHMARK(BM_EquivalenceCheck);
BENCHMARK_MAIN();
