// Incremental GISG partition maintenance gauge (BENCH_extract.json).
//
// The paper's pitch is that supergate extraction is linear-time; before
// this subsystem the optimizer nevertheless paid that linear cost over the
// WHOLE network after every committed move. This bench quantifies what the
// dirty-region re-extractor buys:
//
//   per circuit:
//     commit loop — alternate committing a gainful swap and re-querying the
//       partition, measuring gates re-extracted per commit (incremental)
//       against network size (what a full rebuild re-extracts every time),
//       and the wall-clock ratio of the two maintenance modes on the
//       identical commit stream;
//     flow A/B — the full gsg+GS flow with incremental maintenance on vs
//       off: end-to-end seconds, partition counters, probe groups served
//       from the optimizer's per-slot cache, and a netlist parity check
//       (the two modes must commit the exact same move stream).
//
// Usage: incremental_extract [--out BENCH_extract.json] [--circuits a,b,c]
//                            [--iters N]
#include <fstream>
#include <iostream>
#include <sstream>
#include <tuple>
#include <string>
#include <vector>

#include "engine/rewire_engine.hpp"
#include "flow/flow.hpp"
#include "gen/suite.hpp"
#include "io/blif_writer.hpp"
#include "library/cell_library.hpp"
#include "mapping/mapper.hpp"
#include "opt/optimizer.hpp"
#include "place/placer.hpp"
#include "sym/gisg.hpp"
#include "sym/symmetry.hpp"
#include "timing/sta.hpp"
#include "util/timer.hpp"

namespace {

using namespace rapids;

struct CommitLoopPoint {
  std::size_t network_gates = 0;
  int commits = 0;
  double gates_reextracted_per_commit = 0.0;  // incremental mode
  double incremental_update_ms = 0.0;         // partition() after one commit
  double full_rebuild_ms = 0.0;               // same query, maintenance off
  double speedup = 0.0;
};

/// Commit gainful swaps one at a time, querying the partition after every
/// commit — the optimizer's access pattern, isolated from probing/STA noise.
CommitLoopPoint commit_loop(const std::string& name, const CellLibrary& lib,
                            bool incremental, int max_commits) {
  Network net = map_network(make_benchmark(name), lib).mapped;
  PlacerOptions popt;
  popt.effort = 2.0;
  popt.num_temps = 8;
  Placement pl = place(net, lib, popt);
  Sta sta(net, lib, pl);
  RewireEngine engine(net, pl, lib, sta);
  engine.set_incremental_extraction(incremental);

  CommitLoopPoint pt;
  pt.network_gates = net.num_logic_gates();
  Timer total;
  for (int i = 0; i < max_commits; ++i) {
    // Best single swap by probed gain (re-enumerated per epoch, as the
    // stale-candidate contract requires). Negative-gain swaps are fine:
    // this loop gauges partition maintenance cost, not QoR, and every
    // swap is function-preserving. Exact-gain ties break on a
    // slot-independent pin key: enumeration order follows partition slot
    // numbering, which differs between the two maintenance modes, and the
    // A/B comparison is only honest over the identical commit stream.
    const GisgPartition& part = engine.partition();
    const auto cands = enumerate_all_swaps(part, net);
    auto pin_key = [](const SwapCandidate& c) {
      return std::tuple(c.pin_a.gate, c.pin_a.index, c.pin_b.gate, c.pin_b.index);
    };
    const SwapCandidate* best = nullptr;
    double best_gain = -1e18;
    const double base = sta.critical_delay();
    for (const SwapCandidate& c : cands) {
      const EngineObjective obj = engine.probe(EngineMove::swap(c));
      const double gain = base - obj.critical;
      if (gain > best_gain ||
          (best != nullptr && gain == best_gain && pin_key(c) < pin_key(*best))) {
        best_gain = gain;
        best = &c;
      }
    }
    if (best == nullptr) break;
    engine.commit(EngineMove::swap(*best));
    // The measured quantity: materializing the partition after one commit.
    Timer t;
    engine.partition();
    const double ms = t.seconds() * 1e3;
    if (incremental) {
      pt.incremental_update_ms += ms;
    } else {
      pt.full_rebuild_ms += ms;
    }
    ++pt.commits;
  }
  if (pt.commits > 0) {
    const PartitionStats& ps = engine.partition_stats();
    pt.gates_reextracted_per_commit =
        static_cast<double>(ps.gates_reextracted) / pt.commits;
    pt.incremental_update_ms /= pt.commits;
    pt.full_rebuild_ms /= pt.commits;
  }
  return pt;
}

struct FlowPoint {
  double seconds = 0.0;
  std::uint64_t sgs_reextracted = 0;
  std::uint64_t sgs_reused = 0;
  std::uint64_t groups_reused = 0;
  std::uint64_t full_rebuilds = 0;
  std::uint64_t incremental_updates = 0;
  int moves = 0;
  double final_delay = 0.0;
  std::string blif;
};

FlowPoint run_flow(const PreparedCircuit& prepared, const CellLibrary& lib,
                   bool incremental) {
  FlowOptions fopt;
  fopt.verify = false;
  fopt.opt.incremental_extraction = incremental;
  const ModeRun run = run_mode(prepared, lib, OptMode::GsgPlusGS, fopt);
  FlowPoint pt;
  pt.seconds = run.result.seconds;
  pt.sgs_reextracted = run.result.partition.sgs_reextracted;
  pt.sgs_reused = run.result.partition.sgs_reused;
  pt.groups_reused = run.result.partition.groups_reused;
  pt.full_rebuilds = run.result.partition.full_rebuilds;
  pt.incremental_updates = run.result.partition.incremental_updates;
  pt.moves = run.result.swaps_committed + run.result.resizes_committed;
  pt.final_delay = run.result.final_delay;
  std::ostringstream os;
  write_blif(run.optimized, os, "bench");
  pt.blif = os.str();
  return pt;
}

struct CircuitReport {
  std::string name;
  CommitLoopPoint inc_loop;
  CommitLoopPoint full_loop;
  FlowPoint inc_flow;
  FlowPoint full_flow;
  bool netlists_match = false;
};

CircuitReport measure(const std::string& name, const CellLibrary& lib, int iters) {
  CircuitReport rep;
  rep.name = name;
  rep.inc_loop = commit_loop(name, lib, /*incremental=*/true, iters);
  rep.full_loop = commit_loop(name, lib, /*incremental=*/false, iters);
  if (rep.full_loop.full_rebuild_ms > 0.0 && rep.inc_loop.incremental_update_ms > 0.0) {
    rep.inc_loop.speedup =
        rep.full_loop.full_rebuild_ms / rep.inc_loop.incremental_update_ms;
  }

  FlowOptions fopt;
  const PreparedCircuit prepared = prepare_benchmark(name, lib, fopt);
  rep.inc_flow = run_flow(prepared, lib, /*incremental=*/true);
  rep.full_flow = run_flow(prepared, lib, /*incremental=*/false);
  // The headline correctness claim: identical committed move stream, so
  // identical netlists — incremental maintenance changes cost, not results.
  rep.netlists_match = rep.inc_flow.blif == rep.full_flow.blif &&
                       rep.inc_flow.moves == rep.full_flow.moves;
  return rep;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_extract.json";
  std::vector<std::string> circuits = {"alu2", "c432", "c499", "c1908"};
  int iters = 24;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value after " << a << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--out") {
      out_path = next();
    } else if (a == "--iters") {
      iters = std::stoi(next());
    } else if (a == "--circuits") {
      circuits.clear();
      std::stringstream ss(next());
      std::string tok;
      while (std::getline(ss, tok, ',')) circuits.push_back(tok);
    } else {
      std::cerr << "usage: incremental_extract [--out FILE] [--circuits a,b,c]"
                   " [--iters N]\n";
      return 2;
    }
  }

  const CellLibrary lib = builtin_library_035();
  std::vector<CircuitReport> reports;
  bool all_match = true;
  for (const std::string& name : circuits) {
    std::cerr << "[incremental_extract] " << name << "\n";
    try {
      reports.push_back(measure(name, lib, iters));
      all_match = all_match && reports.back().netlists_match;
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
  }

  std::ostringstream json;
  json << "{\n  \"bench\": \"incremental_extract\",\n"
       << "  \"all_netlists_match\": " << (all_match ? "true" : "false")
       << ",\n  \"circuits\": [\n";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const CircuitReport& r = reports[i];
    json << "    {\"name\": \"" << r.name << "\", \"network_gates\": "
         << r.inc_loop.network_gates << ",\n     \"commit_loop\": {"
         << "\"commits\": " << r.inc_loop.commits
         << ", \"gates_reextracted_per_commit\": "
         << r.inc_loop.gates_reextracted_per_commit
         << ", \"incremental_update_ms\": " << r.inc_loop.incremental_update_ms
         << ", \"full_rebuild_ms\": " << r.full_loop.full_rebuild_ms
         << ", \"speedup\": " << r.inc_loop.speedup << "},\n"
         << "     \"flow\": {\"incremental_seconds\": " << r.inc_flow.seconds
         << ", \"full_seconds\": " << r.full_flow.seconds
         << ", \"moves\": " << r.inc_flow.moves
         << ", \"final_delay_ns\": " << r.inc_flow.final_delay
         << ", \"sgs_reextracted\": " << r.inc_flow.sgs_reextracted
         << ", \"sgs_reused\": " << r.inc_flow.sgs_reused
         << ", \"groups_reused\": " << r.inc_flow.groups_reused
         << ", \"incremental_updates\": " << r.inc_flow.incremental_updates
         << ", \"full_rebuilds\": " << r.inc_flow.full_rebuilds
         << ", \"netlists_match\": " << (r.netlists_match ? "true" : "false")
         << "}}" << (i + 1 < reports.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";

  std::ofstream out(out_path);
  out << json.str();
  out.flush();
  std::cout << json.str();
  if (!out) {
    std::cerr << "error: failed to write " << out_path << "\n";
    return 1;
  }
  std::cerr << "wrote " << out_path << "\n";
  return all_match ? 0 : 1;
}
