// Fig. 2 reproduction: swappable pins inside one supergate.
//
// Rebuilds the figure's supergate (mixed AND/NOR cone with implied pin
// values), prints the symmetry classes the engine derives, applies the
// figure's h<->k swap and verifies equivalence. Then reports swap-candidate
// statistics over the generated benchmark suite: how many swappable pairs a
// mapped netlist exposes, split by polarity — the raw optimization freedom
// the paper's §5 exploits.
#include <iostream>

#include "gen/suite.hpp"
#include "library/cell_library.hpp"
#include "mapping/mapper.hpp"
#include "netlist/builder.hpp"
#include "place/placement.hpp"
#include "rewire/swap.hpp"
#include "sym/gisg.hpp"
#include "sym/symmetry.hpp"
#include "util/timer.hpp"
#include "verify/equivalence.hpp"

using namespace rapids;

namespace {

void figure_case() {
  std::cout << "== Fig. 2 case study ==\n";
  // NOR(a, OR(h, k)): backward implication from the NOR root assigns 0 to
  // every pin; h and k are in the same symmetry class (non-inverting).
  NetworkBuilder b;
  const GateId a = b.input("a"), h = b.input("h"), k = b.input("k");
  const GateId inner = b.or_({h, k});
  const GateId root = b.nor({a, inner});
  b.output("f", root);
  Network net = b.take();
  const Network golden = net.clone();

  const GisgPartition part = extract_gisg(net);
  const SuperGate& sg = part.sgs[0];
  std::cout << "supergate type " << to_string(sg.type) << ", root_fn "
            << to_string(sg.root_fn) << ", " << sg.num_leaves << " leaves\n";
  for (const auto& cls : leaf_symmetry_classes(sg)) {
    std::cout << "  symmetry class:";
    for (const Pin& p : cls) std::cout << ' ' << net.name(net.driver_of(p));
    std::cout << "\n";
  }

  // Swap h and k (the figure's move) and verify.
  const auto swaps = enumerate_swaps(part, 0, net, /*leaves_only=*/true);
  std::cout << "leaf swap candidates: " << swaps.size() << "\n";
  Placement pl(net.id_bound());
  net.for_each_gate([&](GateId g) { pl.set(g, Point{0, 0}); });
  const CellLibrary lib = builtin_library_035();
  for (const SwapCandidate& cand : swaps) {
    SwapEdit edit = apply_swap(net, pl, lib, cand);
    const bool ok = check_equivalence(golden, net).equivalent;
    undo_swap(net, pl, edit);
    std::cout << "  swap " << net.name(net.driver_of(cand.pin_a)) << " <-> "
              << net.name(net.driver_of(cand.pin_b)) << " ("
              << (cand.polarity == SwapPolarity::NonInverting ? "non-inverting"
                                                              : "inverting")
              << "): " << (ok ? "equivalent" : "BROKEN") << "\n";
  }
}

void suite_stats() {
  std::cout << "\n== swap freedom across the suite (mapped netlists) ==\n";
  std::cout << "ckt       gates   SGs  nontriv  cov%%    L   pairs  noninv   inv\n";
  const CellLibrary lib = builtin_library_035();
  for (const BenchmarkInfo& info : benchmark_suite()) {
    if (info.paper_gates > 2600) continue;  // keep the sweep quick
    const Network src = make_benchmark(info.name);
    const Network net = map_network(src, lib).mapped;
    const GisgPartition part = extract_gisg(net);
    const auto swaps = enumerate_all_swaps(part, net);
    std::size_t noninv = 0, inv = 0;
    for (const SwapCandidate& c : swaps) {
      (c.polarity == SwapPolarity::NonInverting ? noninv : inv)++;
    }
    std::printf("%-9s %5zu %5zu %8zu %5.1f %4d %7zu %7zu %5zu\n", info.name.c_str(),
                net.num_logic_gates(), part.sgs.size(), part.num_nontrivial(),
                100.0 * part.nontrivial_coverage(net), part.max_leaves(), swaps.size(),
                noninv, inv);
  }
}

}  // namespace

int main() {
  figure_case();
  suite_stats();
  return 0;
}
