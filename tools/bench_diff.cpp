// bench_diff — standalone regression differ for BENCH_*.json / metrics
// snapshots (same engine as `rapids bench-diff`; this binary exists so CI
// and scripts can diff without linking the full CLI).
//
//   bench_diff <baseline.json> <current.json>
//              [--fail-above pattern=pct]... [--fail-below pattern=pct]...
//              [--all]
//
// Exit codes: 0 = ok, 1 = at least one threshold rule violated,
// 2 = usage / input error.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "trace/bench_diff.hpp"
#include "util/assert.hpp"

namespace {

std::string read_file_text(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw rapids::InputError("cannot read " + path);
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

int usage() {
  std::cerr << "usage: bench_diff <baseline.json> <current.json>\n"
               "         [--fail-above pattern=pct]... "
               "[--fail-below pattern=pct]... [--all]\n"
               "  e.g. bench_diff BENCH_engine.json bench_now.json \\\n"
               "         --fail-below probes_per_sec*=40 --fail-above time.*=25\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  try {
    std::vector<std::string> files;
    std::vector<rapids::DiffRule> rules;
    bool only_changed = true;
    for (std::size_t i = 0; i < args.size(); ++i) {
      const std::string& a = args[i];
      auto next = [&]() -> std::string {
        if (i + 1 >= args.size()) {
          throw rapids::InputError("missing value after " + a);
        }
        return args[++i];
      };
      if (a == "--fail-above") {
        rules.push_back(rapids::parse_diff_rule(next(), /*above=*/true));
      } else if (a == "--fail-below") {
        rules.push_back(rapids::parse_diff_rule(next(), /*above=*/false));
      } else if (a == "--all") {
        only_changed = false;
      } else if (!a.empty() && a[0] == '-') {
        return usage();
      } else {
        files.push_back(a);
      }
    }
    if (files.size() != 2) return usage();
    const rapids::DiffReport report = rapids::diff_metrics_json(
        read_file_text(files[0]), read_file_text(files[1]), rules);
    rapids::write_diff_report(std::cout, report, rules, only_changed);
    return report.violations > 0 ? 1 : 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
