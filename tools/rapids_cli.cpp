// rapids — command-line driver for the RAPIDS rewiring flow.
//
//   rapids flow <circuit|file.blif|file.bench|gen:<gates>[:seed]>
//          [--mode gsg|gs|gsg+gs]
//          [--seed N] [--effort F] [--iters N] [--threads N] [--buffers]
//          [--out out.blif] [--place-out placement.txt] [--no-verify]
//          [--sat-verify] [--paranoid] [--sat-session|--no-sat-session]
//          [--no-incremental] [--extract-diff] [--no-delta-sync]
//          [--speculate|--no-speculate] [--no-prune-cache]
//          [--no-timing-damp] [--timing-damp-diff]
//          [--trace out.json] [--metrics-json out.json]
//          [--provenance out.json]
//       Map, place, optimize and report; optionally write results.
//       gen:<gates>[:seed] runs the synthetic large-circuit profile
//       (mixed arithmetic/control/ecc blocks; see src/gen/large.hpp).
//       --threads N fans probe evaluation out to N workers; the result is
//       bit-identical to --threads 1 (deterministic commit arbitration).
//       --sat-verify escalates the final equivalence check to a SAT proof;
//       --paranoid SAT-proves every committed move on its window, through
//       one persistent incremental proof session by default
//       (--no-sat-session falls back to a throwaway solver per move).
//       --no-incremental re-extracts the whole supergate partition after
//       every commit (the pre-incremental behavior; same netlist);
//       --extract-diff cross-checks the incremental partition against a
//       fresh full extraction after every commit (slow; self-check).
//       --no-delta-sync re-clones probe replicas every epoch instead of
//       shipping O(dirty) deltas; --no-speculate disables the pipelined
//       speculative rounds (workers probing the next round behind the
//       serial arbiter); --no-prune-cache re-enumerates pruned swap lists
//       every phase; --no-timing-damp propagates every probe's full fanout
//       cone instead of stopping at the slack-margin cutoff. All are A/B
//       levers: same netlist. --timing-damp-diff replays every damped
//       probe undamped and aborts if any PO arrival moves (self-check).
//       --trace writes a Chrome trace-event JSON of the run (one track per
//       probe worker; load in Perfetto or chrome://tracing), --metrics-json
//       a machine-readable counter/gauge/histogram snapshot, --provenance
//       the per-move decision stream (probe win -> arbitration verdict ->
//       commit/rollback -> proof verdict). All three only OBSERVE: the
//       optimized netlist is byte-identical with them on or off.
//
//   rapids serve [--jobs file] [--max-concurrent N]
//       Long-lived multi-job driver: read job lines (`<id> <circuit>
//       [key=value ...]`, see src/serve/serve.hpp) from --jobs or stdin
//       until EOF/"quit", run up to N flows concurrently — each on its own
//       SessionContext (private tracer/metrics/provenance, persistent
//       worker pool) — and write per-job artifacts keyed by session id.
//       Each job's outputs are byte-identical to the equivalent one-shot
//       `rapids flow` invocation.
//
//   rapids bench-diff <baseline.json> <current.json>
//          [--fail-above pattern=pct]... [--fail-below pattern=pct]...
//          [--all]
//       Compare two metrics/BENCH_*.json snapshots: every numeric leaf is
//       projected onto its dotted path and diffed. Threshold rules turn
//       deltas into failures (exit 1): --fail-above time.*=10 fails when a
//       matching value grew more than 10%, --fail-below rate.*=40 when it
//       dropped more than 40%. --all prints unchanged keys too.
//
//   rapids trace-check <trace.json>
//       Validate a --trace output against the Chrome trace-event schema
//       (used by CI's trace-smoke job); prints span categories and tracks.
//
//   rapids fuzz [--seed N] [--iters N] [--threads N] [--max-gates N]
//          [--max-inputs N] [--no-sat] [--paranoid-diff] [--extract-diff]
//          [--speculate-diff] [--timing-damp-diff] [--no-shrink]
//          [--out-dir DIR]
//       Differential fuzzing: random circuits through the full flow at
//       --threads 1 vs N and across optimizer modes, cross-checked by
//       random vectors + SAT. --paranoid-diff additionally cross-checks
//       the incremental proof session against the per-move solver,
//       move-for-move; --extract-diff cross-checks incremental partition
//       maintenance against full re-extraction after every committed move
//       (partition canonical equality + netlist parity); --speculate-diff
//       cross-checks the pipelined speculative scheduler against the
//       barrier scheduler (same committed moves, same netlist);
//       --timing-damp-diff cross-checks slack-margin damped propagation
//       against full-cone propagation (per-probe PO-arrival equality plus
//       whole-flow netlist parity). Failures shrink to minimal
//       reproducers.
//
//   rapids symmetry <circuit|file.blif|file.bench>
//       Supergate / symmetry / redundancy report for a mapped circuit.
//
//   rapids table1 [--full|--quick] [--threads N] [circuit...]
//       The Table 1 harness (same engine as bench/table1_rapids).
//
//   rapids list
//       Show the built-in benchmark suite.
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "flow/flow.hpp"
#include "fuzz/fuzz.hpp"
#include "gen/large.hpp"
#include "gen/suite.hpp"
#include "io/bench_reader.hpp"
#include "io/blif_reader.hpp"
#include "io/blif_writer.hpp"
#include "io/placement_io.hpp"
#include "library/cell_library.hpp"
#include "mapping/mapper.hpp"
#include "opt/fanout_opt.hpp"
#include "serve/serve.hpp"
#include "sym/gisg.hpp"
#include "sym/symmetry.hpp"
#include "trace/bench_diff.hpp"
#include "trace/metrics.hpp"
#include "trace/provenance.hpp"
#include "trace/trace.hpp"
#include "util/log.hpp"

namespace {

using namespace rapids;

Network load_circuit(const std::string& arg) {
  auto ends_with = [&arg](const char* suffix) {
    const std::size_t n = std::strlen(suffix);
    return arg.size() >= n && arg.compare(arg.size() - n, n, suffix) == 0;
  };
  if (ends_with(".blif")) return read_blif_file(arg);
  if (ends_with(".bench")) return read_bench_file(arg);
  if (arg.rfind("gen:", 0) == 0) {
    // gen:<gates>[:seed] — synthetic large-circuit profile.
    LargeCircuitOptions lopt;
    const std::string spec = arg.substr(4);
    const std::size_t colon = spec.find(':');
    lopt.target_gates = static_cast<std::size_t>(std::stoull(spec.substr(0, colon)));
    if (colon != std::string::npos) lopt.seed = std::stoull(spec.substr(colon + 1));
    return make_large_circuit(lopt);
  }
  return make_benchmark(arg);
}

int cmd_list() {
  std::cout << "built-in benchmark suite (regenerated Table 1 circuits):\n";
  for (const BenchmarkInfo& info : benchmark_suite()) {
    std::cout << "  " << info.name << "  (" << info.family << ", ~" << info.paper_gates
              << " gates in the paper)\n";
  }
  return 0;
}

int cmd_symmetry(const std::string& target) {
  const CellLibrary lib = builtin_library_035();
  const Network src = load_circuit(target);
  const Network net = map_network(src, lib).mapped;
  const GisgPartition part = extract_gisg(net);
  const auto swaps = enumerate_all_swaps(part, net);
  std::size_t noninv = 0;
  for (const SwapCandidate& c : swaps) {
    if (c.polarity == SwapPolarity::NonInverting) ++noninv;
  }
  std::cout << target << ": " << net.num_logic_gates() << " mapped cells\n"
            << "  supergates:        " << part.sgs.size() << " (" << part.num_nontrivial()
            << " non-trivial)\n"
            << "  coverage:          " << 100.0 * part.nontrivial_coverage(net) << "%\n"
            << "  largest supergate: " << part.max_leaves() << " inputs\n"
            << "  redundancies:      " << part.redundancies.size() << "\n"
            << "  swappable pairs:   " << swaps.size() << " (" << noninv
            << " non-inverting, " << swaps.size() - noninv << " inverting)\n";
  return 0;
}

int cmd_flow(const std::vector<std::string>& args) {
  std::string target;
  OptMode mode = OptMode::GsgPlusGS;
  FlowOptions options;
  bool buffers = false;
  std::string out_blif, out_place;
  std::string out_trace, out_metrics, out_provenance;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= args.size()) throw InputError("missing value after " + a);
      return args[++i];
    };
    if (a == "--mode") {
      const std::string m = next();
      if (m == "gsg") {
        mode = OptMode::Gsg;
      } else if (m == "gs" || m == "GS") {
        mode = OptMode::GateSizing;
      } else if (m == "gsg+gs" || m == "gsg+GS") {
        mode = OptMode::GsgPlusGS;
      } else {
        throw InputError("unknown mode: " + m);
      }
    } else if (a == "--seed") {
      options.placer.seed = std::stoull(next());
    } else if (a == "--effort") {
      options.placer.effort = std::stod(next());
    } else if (a == "--iters") {
      options.opt.max_iterations = std::stoi(next());
    } else if (a == "--threads") {
      options.opt.threads = std::stoi(next());
      if (options.opt.threads < 1) throw InputError("--threads must be >= 1");
    } else if (a == "--buffers") {
      buffers = true;
    } else if (a == "--out") {
      out_blif = next();
    } else if (a == "--place-out") {
      out_place = next();
    } else if (a == "--no-verify") {
      options.verify = false;
    } else if (a == "--sat-verify") {
      options.verify_sat = true;
    } else if (a == "--paranoid") {
      options.opt.paranoid = true;
    } else if (a == "--sat-session") {
      options.opt.sat_session = true;  // the default; kept as an explicit flag
    } else if (a == "--no-sat-session") {
      options.opt.sat_session = false;
    } else if (a == "--no-incremental") {
      options.opt.incremental_extraction = false;
    } else if (a == "--extract-diff") {
      options.opt.extract_diff = true;
    } else if (a == "--no-delta-sync") {
      options.opt.delta_replica_sync = false;
    } else if (a == "--speculate") {
      options.opt.speculate = true;  // the default; kept as an explicit flag
    } else if (a == "--no-speculate") {
      options.opt.speculate = false;
    } else if (a == "--no-prune-cache") {
      options.opt.prune_cache = false;
    } else if (a == "--no-timing-damp") {
      options.opt.timing_damp = false;
    } else if (a == "--timing-damp-diff") {
      options.opt.timing_damp_diff = true;
    } else if (a == "--trace") {
      out_trace = next();
    } else if (a == "--metrics-json") {
      out_metrics = next();
    } else if (a == "--provenance") {
      out_provenance = next();
    } else if (!a.empty() && a[0] == '-') {
      throw InputError("unknown flag: " + a);
    } else {
      target = a;
    }
  }
  if (target.empty()) throw InputError("flow: no circuit given");

  // Observation-only instrumentation: enabled before any flow stage runs so
  // map/place land on the trace too. Neither recorder feeds anything back
  // into the optimization — the netlist is byte-identical with them off.
  if (!out_trace.empty()) {
    Tracer::instance().enable(std::max(options.opt.threads, 1));
  }
  if (!out_provenance.empty()) ProvenanceLog::instance().enable();

  const CellLibrary lib = builtin_library_035();
  const Network src = load_circuit(target);
  PreparedCircuit prepared = prepare_circuit(target, src, lib, options);
  std::cout << target << ": " << prepared.mapped.num_logic_gates()
            << " cells placed, initial delay " << prepared.initial_delay << " ns\n";

  // Only the buffer pass and --place-out still need the prepared circuit
  // after optimization; otherwise move-adopt it (no whole-network clone).
  const bool keep_prepared = buffers || !out_place.empty();
  ModeRun run = keep_prepared ? run_mode(prepared, lib, mode, options)
                              : run_mode(std::move(prepared), lib, mode, options);
  const OptimizerResult& r = run.result;
  std::cout << to_string(mode) << ": delay " << r.initial_delay << " -> "
            << r.final_delay << " ns (" << r.improvement_percent() << "%), area "
            << r.area_delta_percent() << "%, " << r.swaps_committed << " swaps / "
            << r.resizes_committed << " resizes, " << r.probes << " probes on "
            << r.threads << (r.threads == 1 ? " thread, " : " threads, ")
            << r.seconds << " s"
            << (options.verify ? (run.verified ? ", verified" : ", VERIFY FAILED")
                               : "")
            << "\n";
  std::cout << "partition: " << r.partition.sgs_reextracted
            << " sgs re-extracted / " << r.partition.sgs_reused << " reused over "
            << r.partition.incremental_updates << " incremental updates, "
            << r.partition.groups_reused << " probe groups served from cache, "
            << r.partition.full_rebuilds << " full rebuild"
            << (r.partition.full_rebuilds == 1 ? "" : "s") << "\n";
  // Every bucket is disjoint (sync is quoted inside probe, not added), so
  // the sum tracks the optimize total; the optimizer itself warns when the
  // unattributed remainder exceeds 5%.
  std::cout << "phases: setup " << r.seconds_setup << " s, groups "
            << r.seconds_groups << " s, probe " << r.seconds_probe
            << " s (incl. sync " << r.seconds_sync << " s, margins "
            << r.seconds_timing << " s), arbitrate "
            << r.seconds_arbitrate << " s, commit " << r.seconds_commit
            << " s, finalize " << r.seconds_finalize << " s, other "
            << r.seconds_unattributed << " s = " << r.seconds << " s\n";
  if (r.gain_hist.count() > 0) {
    std::cout << "gains: committed-move gain (ns) " << r.gain_hist.to_string()
              << "\n";
  }
  std::cout << "scale: " << r.canonicalize_calls << " canonicalize calls / "
            << r.gates_canonicalized << " gates re-sorted after setup, "
            << r.candidates_enumerated << " swap candidates enumerated, "
            << r.pruned_groups_cached << " pruned lists served by slack epoch; "
            << "replica sync " << r.replica_delta_syncs << " delta ("
            << r.replica_sync_bytes_delta << " B over " << r.replica_delta_commits
            << " commits) / " << r.replica_full_syncs << " full ("
            << r.replica_sync_bytes_full << " B)\n";
  // Propagation shape: how much of the structural fanout cone each probe
  // actually walked, and how much the slack-margin cutoff suppressed.
  if (r.probes > 0) {
    const double visited = static_cast<double>(r.gates_propagated);
    const double suppressed = static_cast<double>(r.damp_cutoffs);
    std::cout << "timing: " << r.gates_propagated << " gates propagated ("
              << visited / static_cast<double>(r.probes) << " per probe), "
              << r.damp_cutoffs << " damp cutoffs ("
              << (visited + suppressed > 0.0
                      ? 100.0 * suppressed / (visited + suppressed)
                      : 0.0)
              << "%), " << r.damp_fallbacks << " undamped replays, "
              << r.margin_refreshes << " margin refreshes\n";
  }
  if (r.sched_speculation_hits + r.sched_speculation_wasted > 0) {
    const double total = static_cast<double>(r.sched_speculation_hits +
                                             r.sched_speculation_wasted);
    std::cout << "speculation: " << r.sched_speculative_probes
              << " probes behind arbitration, " << r.sched_speculation_hits
              << " group results reused / " << r.sched_speculation_wasted
              << " wasted ("
              << 100.0 * static_cast<double>(r.sched_speculation_hits) / total
              << "% hit)\n";
  }
  if (options.opt.paranoid) {
    std::cout << "paranoid: " << r.moves_proved
              << " committed moves SAT-proved on their windows ("
              << (options.opt.sat_session ? "incremental session" : "per-move solver")
              << ": " << r.proof_gates_encoded << " gates encoded, "
              << r.proof_conflicts << " conflicts";
    if (options.opt.sat_session) {
      std::cout << ", " << r.proof_cache_hits << " cone cache hits, "
                << r.solver_learned_kept << " learned clauses retained / "
                << r.solver_learned_deleted << " evicted over "
                << r.solver_reduce_dbs << " reduce_db rounds";
    }
    std::cout << ")\n";
    if (r.proof_conflict_hist.count() > 0) {
      std::cout << "proof-conflicts: per-move " << r.proof_conflict_hist.to_string()
                << "\n";
    }
  }

  if (!out_trace.empty()) {
    Tracer& tracer = Tracer::instance();
    tracer.disable();  // workers are quiescent; freeze before exporting
    std::ofstream os(out_trace);
    if (!os) throw InputError("cannot write " + out_trace);
    tracer.write_chrome_trace(os);
    std::cout << "wrote " << out_trace << " (" << tracer.recorded()
              << " events, " << tracer.dropped() << " dropped)\n";
  }
  if (!out_metrics.empty()) {
    MetricsRegistry reg;
    // The one-shot path runs on the process-default session context.
    reg.set_label("session.id", "default");
    reg.set_label("circuit", target);
    reg.set_label("mode", to_string(mode));
    reg.set_label("threads", std::to_string(r.threads));
    collect_flow_metrics(reg, r);
    std::ofstream os(out_metrics);
    if (!os) throw InputError("cannot write " + out_metrics);
    reg.write_json(os);
    std::cout << "wrote " << out_metrics << " (" << reg.size() << " metrics)\n";
  }
  if (!out_provenance.empty()) {
    ProvenanceLog& prov = ProvenanceLog::instance();
    prov.disable();
    std::string diag;
    const int chains = prov.resolve_committed_chains(&diag);
    if (chains < 0) {
      log_warn() << "provenance self-check failed: " << diag;
    }
    std::ofstream os(out_provenance);
    if (!os) throw InputError("cannot write " + out_provenance);
    prov.write_json(os);
    std::cout << "wrote " << out_provenance << " (" << prov.records().size()
              << " events, " << (chains < 0 ? 0 : chains)
              << " committed chains resolved)\n";
  }

  if (buffers) {
    Placement pl = prepared.placement;
    Sta sta(run.optimized, lib, pl);
    const FanoutOptResult fr = optimize_fanout(run.optimized, pl, lib, sta);
    std::cout << "fanout-opt: " << fr.buffers_inserted << " buffers, delay "
              << fr.initial_delay << " -> " << fr.final_delay << " ns\n";
  }
  if (!out_blif.empty()) {
    write_blif_file(run.optimized, out_blif, target);
    std::cout << "wrote " << out_blif << "\n";
  }
  if (!out_place.empty()) {
    write_placement_file(prepared.mapped, prepared.placement, out_place);
    std::cout << "wrote " << out_place << "\n";
  }
  return run.verified ? 0 : 1;
}

int cmd_table1(const std::vector<std::string>& args) {
  bool quick = false, full = false;
  int threads = 1;
  std::vector<std::string> names;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--quick") {
      quick = true;
    } else if (a == "--full") {
      full = true;
    } else if (a == "--threads") {
      if (i + 1 >= args.size()) throw InputError("missing value after --threads");
      threads = std::stoi(args[++i]);
      if (threads < 1) throw InputError("--threads must be >= 1");
    } else {
      names.push_back(a);
    }
  }
  if (names.empty()) {
    if (quick) {
      names = {"alu2", "c432", "c499"};
    } else {
      for (const BenchmarkInfo& info : benchmark_suite()) {
        if (!full && info.paper_gates > 3000) continue;
        names.push_back(info.name);
      }
    }
  }
  const CellLibrary lib = builtin_library_035();
  FlowOptions options;
  options.placer.effort = 4.0;
  options.opt.max_iterations = 4;
  options.opt.threads = threads;
  std::vector<BenchmarkRow> rows;
  for (const std::string& name : names) {
    std::cerr << "[table1] " << name << "\n";
    const PreparedCircuit prepared = prepare_benchmark(name, lib, options);
    rows.push_back(produce_table1_row(prepared, lib, options));
  }
  print_table1(rows, std::cout);
  return 0;
}

std::string read_file_text(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw InputError("cannot read " + path);
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

int cmd_bench_diff(const std::vector<std::string>& args) {
  std::vector<std::string> files;
  std::vector<DiffRule> rules;
  bool only_changed = true;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= args.size()) throw InputError("missing value after " + a);
      return args[++i];
    };
    if (a == "--fail-above") {
      rules.push_back(parse_diff_rule(next(), /*above=*/true));
    } else if (a == "--fail-below") {
      rules.push_back(parse_diff_rule(next(), /*above=*/false));
    } else if (a == "--all") {
      only_changed = false;
    } else if (!a.empty() && a[0] == '-') {
      throw InputError("unknown bench-diff flag: " + a);
    } else {
      files.push_back(a);
    }
  }
  if (files.size() != 2) {
    throw InputError("bench-diff: expected exactly two JSON files, got " +
                     std::to_string(files.size()));
  }
  const DiffReport report = diff_metrics_json(read_file_text(files[0]),
                                              read_file_text(files[1]), rules);
  write_diff_report(std::cout, report, rules, only_changed);
  return report.violations > 0 ? 1 : 0;
}

int cmd_trace_check(const std::vector<std::string>& args) {
  if (args.size() != 1) throw InputError("trace-check: expected one trace file");
  std::string diag;
  std::vector<std::string> cats;
  std::vector<std::int64_t> tids;
  if (!validate_chrome_trace(read_file_text(args[0]), &diag, &cats, &tids)) {
    std::cerr << "trace-check: INVALID: " << diag << "\n";
    return 1;
  }
  std::cout << "trace-check: ok — " << tids.size() << " tracks, "
            << cats.size() << " span categories (";
  for (std::size_t i = 0; i < cats.size(); ++i) {
    std::cout << (i > 0 ? ", " : "") << cats[i];
  }
  std::cout << ")\n";
  return 0;
}

int cmd_serve(const std::vector<std::string>& args) {
  ServeOptions options;
  std::string jobs_file;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= args.size()) throw InputError("missing value after " + a);
      return args[++i];
    };
    if (a == "--jobs") {
      jobs_file = next();
    } else if (a == "--max-concurrent") {
      options.max_concurrent = std::stoi(next());
      if (options.max_concurrent < 1) {
        throw InputError("--max-concurrent must be >= 1");
      }
    } else {
      throw InputError("unknown serve flag: " + a);
    }
  }
  if (jobs_file.empty()) return serve_loop(std::cin, std::cout, options);
  std::ifstream is(jobs_file);
  if (!is) throw InputError("cannot read " + jobs_file);
  return serve_loop(is, std::cout, options);
}

int cmd_fuzz(const std::vector<std::string>& args) {
  FuzzOptions options;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= args.size()) throw InputError("missing value after " + a);
      return args[++i];
    };
    if (a == "--seed") {
      options.seed = std::stoull(next());
    } else if (a == "--iters") {
      options.iterations = std::stoi(next());
    } else if (a == "--threads") {
      options.threads = std::stoi(next());
      if (options.threads < 1) throw InputError("--threads must be >= 1");
    } else if (a == "--max-gates") {
      options.max_gates = std::stoi(next());
    } else if (a == "--max-inputs") {
      options.max_inputs = std::stoi(next());
    } else if (a == "--no-sat") {
      options.sat_crosscheck = false;
    } else if (a == "--paranoid-diff") {
      options.paranoid_diff = true;
    } else if (a == "--extract-diff") {
      options.extract_diff = true;
    } else if (a == "--speculate-diff") {
      options.speculate_diff = true;
    } else if (a == "--timing-damp-diff") {
      options.timing_damp_diff = true;
    } else if (a == "--no-shrink") {
      options.shrink = false;
    } else if (a == "--out-dir") {
      options.repro_dir = next();
    } else {
      throw InputError("unknown fuzz flag: " + a);
    }
  }
  const FuzzResult result = run_fuzz(options, std::cout);
  return result.ok() ? 0 : 1;
}

int usage() {
  std::cerr << "usage: rapids [--log-level L] "
               "<flow|serve|symmetry|table1|fuzz|bench-diff|trace-check|list> [args]\n"
               "  rapids flow c432 --mode gsg+gs --threads 4 --out c432_opt.blif\n"
               "  rapids flow c499 --sat-verify --paranoid\n"
               "  rapids flow c499 --trace t.json --metrics-json m.json\n"
               "  rapids serve --jobs jobs.txt --max-concurrent 2\n"
               "  rapids bench-diff old.json new.json --fail-below "
               "rate.probes_per_sec=40\n"
               "  rapids trace-check t.json\n"
               "  rapids symmetry k2\n"
               "  rapids table1 --quick\n"
               "  rapids fuzz --seed 7 --iters 25 --threads 3\n"
               "  rapids list\n"
               "  --log-level debug|info|warn|error|off (anywhere; default warn)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> all(argv + 1, argv + argc);
  try {
    // --log-level is global (any position, any subcommand): strip it here
    // and set the process-wide logger before dispatch.
    for (std::size_t i = 0; i < all.size();) {
      if (all[i] == "--log-level") {
        if (i + 1 >= all.size()) throw InputError("missing value after --log-level");
        Logger::instance().set_level(parse_log_level(all[i + 1]));
        all.erase(all.begin() + static_cast<std::ptrdiff_t>(i),
                  all.begin() + static_cast<std::ptrdiff_t>(i) + 2);
      } else {
        ++i;
      }
    }
    if (all.empty()) return usage();
    const std::string cmd = all[0];
    std::vector<std::string> args(all.begin() + 1, all.end());
    if (cmd == "list") return cmd_list();
    if (cmd == "symmetry") {
      if (args.empty()) return usage();
      return cmd_symmetry(args[0]);
    }
    if (cmd == "flow") return cmd_flow(args);
    if (cmd == "serve") return cmd_serve(args);
    if (cmd == "table1") return cmd_table1(args);
    if (cmd == "fuzz") return cmd_fuzz(args);
    if (cmd == "bench-diff") return cmd_bench_diff(args);
    if (cmd == "trace-check") return cmd_trace_check(args);
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
